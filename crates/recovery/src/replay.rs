//! Checkpoint loading and deterministic command-log replay.
//!
//! Loading is shard-parallel: every part file in the recovery chain is
//! read and CRC-verified concurrently, entries are bucketed by key hash,
//! and per-shard merge + store installation run one thread per shard
//! (part-index stripes are not stable across checkpoints, so recovery
//! re-shards by key rather than by part). Replay stays single-threaded in
//! commit order — determinism demands it — but the command log's read,
//! CRC check, and decode run ahead on a prefetch thread
//! ([`crate::logfile::CommandLogStream`]).

use std::time::{Duration, Instant};

use calc_common::types::{CommitSeq, Key, Value};
use calc_core::manifest::CheckpointDir;
use calc_core::merge::materialize_chain_sharded_with_vfs;
use calc_core::strategy::CheckpointStrategy;
use calc_txn::commitlog::CommitRecord;
use calc_txn::proc::{ProcRegistry, TxnOps};

/// Why recovery failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// No valid full checkpoint exists in the directory.
    NoFullCheckpoint,
    /// The strategy's checkpoints are not transaction-consistent (Fuzzy):
    /// without a physical redo log they cannot be recovered into a
    /// consistent state — the paper's core argument (§2.1).
    NotTransactionConsistent(&'static str),
    /// A replayed procedure id is not registered.
    UnknownProcedure(u16),
    /// A replayed procedure aborted — impossible under determinism unless
    /// the log or registry is wrong.
    ReplayDiverged(String),
    /// I/O error reading checkpoints.
    Io(std::io::Error),
    /// Store error while loading.
    Store(calc_storage::dual::StoreError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NoFullCheckpoint => write!(f, "no valid full checkpoint found"),
            RecoveryError::NotTransactionConsistent(name) => write!(
                f,
                "{name} checkpoints are not transaction-consistent and cannot be \
                 recovered without a database log"
            ),
            RecoveryError::UnknownProcedure(id) => write!(f, "unknown procedure id {id}"),
            RecoveryError::ReplayDiverged(m) => write!(f, "replay diverged: {m}"),
            RecoveryError::Io(e) => write!(f, "io error: {e}"),
            RecoveryError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

impl From<calc_storage::dual::StoreError> for RecoveryError {
    fn from(e: calc_storage::dual::StoreError) -> Self {
        RecoveryError::Store(e)
    }
}

/// Per-phase progress breakdown of a recovery run (the fix for replay's
/// formerly invisible progress: the sim driver prints this).
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryStats {
    /// Reading + CRC-verifying + hash-bucketing the chain's part files.
    pub part_load: Duration,
    /// Per-shard last-event-wins merge and store installation.
    pub merge: Duration,
    /// Deterministic command-log replay.
    pub replay: Duration,
    /// Part files read (legacy single-file checkpoints count as one part).
    pub parts_loaded: usize,
    /// Worker threads the load/merge phases ran on.
    pub threads: usize,
}

/// What recovery accomplished.
#[derive(Clone, Debug)]
pub struct RecoveryOutcome {
    /// Records loaded from checkpoints.
    pub loaded_records: u64,
    /// Checkpoints read (1 full + N partials).
    pub checkpoint_files: usize,
    /// The watermark recovery resumed from.
    pub watermark: CommitSeq,
    /// Transactions replayed from the command log.
    pub replayed: u64,
    /// Time spent loading + merging checkpoints — the "recovery time"
    /// annotated on Figure 4(b).
    pub load_duration: Duration,
    /// Time spent replaying.
    pub replay_duration: Duration,
    /// Per-phase breakdown.
    pub stats: RecoveryStats,
}

/// Serial replay bridge: routes a procedure's data operations straight to
/// the strategy (no locks — replay is single-threaded in commit order).
struct ReplayOps<'a> {
    strategy: &'a dyn CheckpointStrategy,
    token: calc_core::strategy::TxnToken,
    failed: Option<String>,
}

impl TxnOps for ReplayOps<'_> {
    fn get(&mut self, key: Key) -> Option<Value> {
        self.strategy.get(key)
    }

    fn put(&mut self, key: Key, value: &[u8]) {
        if let Err(e) = self.strategy.apply_write(&mut self.token, key, value) {
            self.failed = Some(format!("put {key}: {e}"));
        }
    }

    fn insert(&mut self, key: Key, value: &[u8]) -> bool {
        match self.strategy.apply_insert(&mut self.token, key, value) {
            Ok(ok) => ok,
            Err(e) => {
                self.failed = Some(format!("insert {key}: {e}"));
                false
            }
        }
    }

    fn delete(&mut self, key: Key) -> bool {
        self.strategy.apply_delete(&mut self.token, key).is_ok()
    }
}

/// Loads the newest recovery chain into a **fresh** strategy instance
/// (checkpoint-only mode, paper use cases 1–2 of §1). Part files load and
/// merge on `dir.checkpoint_threads()` workers; installation into the
/// store runs one thread per key-hash shard (disjoint keys, which
/// [`CheckpointStrategy::load_initial`] permits concurrently).
pub fn recover_checkpoint_only(
    dir: &CheckpointDir,
    strategy: &dyn CheckpointStrategy,
) -> Result<RecoveryOutcome, RecoveryError> {
    let start = Instant::now();
    let Some((full, partials)) = dir.recovery_chain()? else {
        return Err(RecoveryError::NoFullCheckpoint);
    };
    let watermark = partials.last().map(|p| p.watermark).unwrap_or(full.watermark);
    let files = 1 + partials.len();
    let parts_loaded =
        full.parts.len() + partials.iter().map(|p| p.parts.len()).sum::<usize>();
    let threads = dir.checkpoint_threads();
    let (shards, timing) =
        materialize_chain_sharded_with_vfs(dir.vfs().as_ref(), &full, &partials, threads)?;

    // Install each shard's sub-map; keys are disjoint across shards.
    let install_start = Instant::now();
    let mut loaded = 0u64;
    if shards.len() == 1 {
        for (key, value) in &shards[0] {
            strategy.load_initial(*key, value)?;
            loaded += 1;
        }
    } else {
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| {
                    s.spawn(move || -> Result<u64, RecoveryError> {
                        let mut n = 0u64;
                        for (key, value) in shard {
                            strategy.load_initial(*key, value)?;
                            n += 1;
                        }
                        Ok(n)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("install thread panicked"))
                .collect::<Vec<_>>()
        });
        for r in results {
            loaded += r?;
        }
    }
    Ok(RecoveryOutcome {
        loaded_records: loaded,
        checkpoint_files: files,
        watermark,
        replayed: 0,
        load_duration: start.elapsed(),
        replay_duration: Duration::ZERO,
        stats: RecoveryStats {
            part_load: timing.read,
            merge: timing.merge + install_start.elapsed(),
            replay: Duration::ZERO,
            parts_loaded,
            threads,
        },
    })
}

/// Deterministically re-applies one committed record through the
/// registry, stamping the commit with the strategy's *current* phase
/// stamp. This is the single-record unit [`recover_streamed`] loops
/// over, exposed so a warm standby (`calc-replica`) can apply a live
/// log tail incrementally with identical semantics to one-shot replay.
pub fn apply_commit(
    strategy: &dyn CheckpointStrategy,
    registry: &ProcRegistry,
    rec: &CommitRecord,
) -> Result<(), RecoveryError> {
    let proc = registry
        .get(rec.proc)
        .ok_or(RecoveryError::UnknownProcedure(rec.proc.0))?;
    let mut ops = ReplayOps {
        strategy,
        token: strategy.txn_begin(),
        failed: None,
    };
    let result = proc.run(&rec.params, &mut ops);
    let ReplayOps {
        mut token, failed, ..
    } = ops;
    match (result, failed) {
        (Ok(()), None) => {
            // Replay does not re-append to a commit log, but the commit
            // stamp must be the strategy's CURRENT stamp (not a
            // hardcoded cycle 0): partial strategies dirty-mark the
            // stamp's checkpoint interval, and if the caller has already
            // resumed the id space past the pre-crash files, marks in a
            // stale interval would leave the next partial checkpoint
            // missing every replayed write while its watermark claims
            // to cover them — silent data loss on the next crash.
            let stamp = token.stamp;
            strategy.on_commit(&mut token, rec.seq, stamp);
            strategy.txn_end(token);
            Ok(())
        }
        (Err(e), _) => {
            // A deterministic abort also happened (identically) before
            // the crash, so the original never committed… except it IS
            // in the commit log. Divergence.
            strategy.txn_end(token);
            Err(RecoveryError::ReplayDiverged(format!("{}: {e}", rec.txn)))
        }
        (Ok(()), Some(msg)) => {
            strategy.txn_end(token);
            Err(RecoveryError::ReplayDiverged(format!("{}: {msg}", rec.txn)))
        }
    }
}

/// Full recovery: load the newest chain, then deterministically replay
/// `commands` (commit records with `seq > watermark`, in order) through
/// the registry. Refuses non-transaction-consistent strategies.
///
/// A directory with NO checkpoints at all is a valid cold start (a crash
/// before the first checkpoint completed): recovery proceeds log-only,
/// replaying every command from the empty state. Checkpoints present but
/// no full one is still [`RecoveryError::NoFullCheckpoint`] — that chain
/// is broken, not merely young.
pub fn recover(
    dir: &CheckpointDir,
    strategy: &dyn CheckpointStrategy,
    registry: &ProcRegistry,
    commands: &[CommitRecord],
) -> Result<RecoveryOutcome, RecoveryError> {
    recover_streamed(dir, strategy, registry, commands.iter().cloned().map(Ok))
}

/// [`recover`] over a streaming command source — pair with
/// [`crate::logfile::CommandLogStream`] so log read/CRC/decode runs on
/// the prefetch thread while this thread applies in commit order.
pub fn recover_streamed(
    dir: &CheckpointDir,
    strategy: &dyn CheckpointStrategy,
    registry: &ProcRegistry,
    commands: impl IntoIterator<Item = std::io::Result<CommitRecord>>,
) -> Result<RecoveryOutcome, RecoveryError> {
    if !strategy.transaction_consistent() {
        return Err(RecoveryError::NotTransactionConsistent(strategy.name()));
    }
    let mut outcome = match recover_checkpoint_only(dir, strategy) {
        Ok(outcome) => outcome,
        // Log-only cold start: no checkpoint ever completed, so the log
        // alone carries the whole history and replay starts from empty.
        Err(RecoveryError::NoFullCheckpoint) if dir.scan()?.is_empty() => RecoveryOutcome {
            loaded_records: 0,
            checkpoint_files: 0,
            watermark: CommitSeq::ZERO,
            replayed: 0,
            load_duration: Duration::ZERO,
            replay_duration: Duration::ZERO,
            stats: RecoveryStats::default(),
        },
        Err(e) => return Err(e),
    };
    let replay_start = Instant::now();
    for rec in commands {
        let rec = rec?;
        if rec.seq <= outcome.watermark {
            continue; // already reflected in the checkpoint
        }
        apply_commit(strategy, registry, &rec)?;
        outcome.replayed += 1;
    }
    outcome.replay_duration = replay_start.elapsed();
    outcome.stats.replay = outcome.replay_duration;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calc_core::calc::CalcStrategy;
    use calc_core::manifest::CheckpointDir;
    use calc_core::strategy::NoopEnv;
    use calc_core::throttle::Throttle;
    use calc_storage::dual::StoreConfig;
    use calc_txn::commitlog::CommitLog;
    use calc_txn::proc::{params, AbortReason, LockRequest, ProcId, Procedure};
    use calc_common::types::TxnId;
    use std::sync::Arc;

    /// Deterministic test procedure: sets key K to a value derived from
    /// params.
    struct SetProc;
    impl Procedure for SetProc {
        fn id(&self) -> ProcId {
            ProcId(1)
        }
        fn name(&self) -> &'static str {
            "set"
        }
        fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
            let mut r = params::Reader::new(p);
            let key = r.u64()?;
            Ok(LockRequest {
                reads: vec![],
                writes: vec![Key(key)],
            })
        }
        fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
            let mut r = params::Reader::new(p);
            let key = Key(r.u64()?);
            let val = r.u64()?;
            let bytes = val.to_le_bytes();
            if ops.get(key).is_some() {
                ops.put(key, &bytes);
            } else {
                ops.insert(key, &bytes);
            }
            Ok(())
        }
    }

    fn dir(name: &str) -> CheckpointDir {
        let d = std::env::temp_dir().join(format!(
            "calc-recovery-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_dir_all(&d);
        CheckpointDir::open(&d, Arc::new(Throttle::unlimited())).unwrap()
    }

    fn set_params(key: u64, val: u64) -> Arc<[u8]> {
        params::Writer::new().u64(key).u64(val).finish()
    }

    fn run_set(
        strategy: &CalcStrategy,
        log: &CommitLog,
        key: u64,
        val: u64,
    ) {
        let proc = SetProc;
        let p = set_params(key, val);
        let mut ops = ReplayOps {
            strategy,
            token: strategy.txn_begin(),
            failed: None,
        };
        proc.run(&p, &mut ops).unwrap();
        assert!(ops.failed.is_none());
        let mut token = ops.token;
        let (seq, stamp) = log.append_commit(TxnId(key * 100 + val), ProcId(1), p);
        strategy.on_commit(&mut token, seq, stamp);
        strategy.txn_end(token);
    }

    #[test]
    fn checkpoint_then_replay_reconstructs_state() {
        let log = Arc::new(CommitLog::new(true));
        let primary = CalcStrategy::full(StoreConfig::for_records(256, 16), log.clone());
        let d = dir("replay");

        // 10 pre-checkpoint transactions.
        for k in 0..10 {
            run_set(&primary, &log, k, k * 2);
        }
        let stats = primary.checkpoint(&NoopEnv, &d).unwrap();
        // 5 post-checkpoint transactions (3 new keys, 2 overwrites).
        for k in 8..13 {
            run_set(&primary, &log, k, 1000 + k);
        }

        // Crash. Fresh strategy + recovery.
        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(SetProc));
        let recovered = CalcStrategy::full(
            StoreConfig::for_records(256, 16),
            Arc::new(CommitLog::new(true)),
        );
        let commands = log.commits_after(CommitSeq::ZERO);
        let outcome = recover(&d, &recovered, &registry, &commands).unwrap();
        assert_eq!(outcome.loaded_records, 10);
        assert_eq!(outcome.replayed, 5);
        assert_eq!(outcome.watermark, stats.watermark);

        // Recovered state must equal primary state.
        for k in 0..13u64 {
            assert_eq!(
                recovered.get(Key(k)),
                primary.get(Key(k)),
                "key {k} diverged"
            );
        }
        assert_eq!(recovered.record_count(), primary.record_count());
    }

    /// ISSUE satellite: a torn write on ONE part of the newest full
    /// checkpoint must quarantine the WHOLE cycle (every part plus its
    /// manifest — a partially-valid part set is not a checkpoint) and
    /// fall back to the previous full, paying with a longer command-log
    /// replay — and lose nothing.
    #[test]
    fn torn_part_quarantines_cycle_and_falls_back_to_previous_full() {
        let log = Arc::new(CommitLog::new(true));
        let primary = CalcStrategy::full(StoreConfig::for_records(256, 16), log.clone());
        let d = dir("tornpart");
        d.set_checkpoint_threads(4);

        for k in 0..10 {
            run_set(&primary, &log, k, k * 2);
        }
        let first = primary.checkpoint(&NoopEnv, &d).unwrap();
        for k in 10..15 {
            run_set(&primary, &log, k, 1000 + k);
        }
        let second = primary.checkpoint(&NoopEnv, &d).unwrap();
        assert_eq!(second.parts, 4);
        for k in 15..18 {
            run_set(&primary, &log, k, 2000 + k);
        }

        // Tear one part of the newest full: drop its tail (footer and
        // some records gone) — as if the disk lost the unsynced end.
        let torn = d.path().join("ckpt-0000000001-full.part-2");
        let bytes = std::fs::read(&torn).unwrap();
        std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();

        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(SetProc));
        let recovered = CalcStrategy::full(
            StoreConfig::for_records(256, 16),
            Arc::new(CommitLog::new(true)),
        );
        let commands = log.commits_after(CommitSeq::ZERO);
        let outcome = recover(&d, &recovered, &registry, &commands).unwrap();

        // Fell back to full #0: 10 loaded records, the older watermark,
        // and the 8 post-#0 transactions recovered via replay instead.
        assert_eq!(outcome.loaded_records, 10);
        assert_eq!(outcome.watermark, first.watermark);
        assert_eq!(outcome.replayed, 8);
        // The whole cycle is set aside: 4 parts + the manifest, including
        // the three parts whose own checksums were fine.
        assert_eq!(d.quarantined_count(), 5);
        for name in [
            "ckpt-0000000001-full.manifest.quarantine",
            "ckpt-0000000001-full.part-0.quarantine",
            "ckpt-0000000001-full.part-1.quarantine",
            "ckpt-0000000001-full.part-2.quarantine",
            "ckpt-0000000001-full.part-3.quarantine",
        ] {
            assert!(d.path().join(name).exists(), "{name} not set aside");
        }
        for k in 0..18u64 {
            assert_eq!(
                recovered.get(Key(k)),
                primary.get(Key(k)),
                "key {k} diverged after fallback"
            );
        }
        assert_eq!(recovered.record_count(), primary.record_count());
    }

    /// Checkpoints written by the pre-parts single-file format must keep
    /// recovering (the legacy `.calc` path through the same sharded
    /// loader).
    #[test]
    fn legacy_single_file_chain_recovers() {
        use calc_core::file::CheckpointKind;
        let d = dir("legacy");
        d.set_checkpoint_threads(4);
        let mut p = d.begin(CheckpointKind::Full, 0, CommitSeq(10)).unwrap();
        for k in 0..50u64 {
            p.writer().write_record(Key(k), &k.to_le_bytes()).unwrap();
        }
        p.publish().unwrap();
        let mut p = d.begin(CheckpointKind::Partial, 1, CommitSeq(20)).unwrap();
        p.writer().write_tombstone(Key(7)).unwrap();
        p.writer().write_record(Key(3), b"patched").unwrap();
        p.publish().unwrap();
        assert!(d.path().join("ckpt-0000000000-full.calc").exists());

        let recovered = CalcStrategy::full(
            StoreConfig::for_records(256, 16),
            Arc::new(CommitLog::new(false)),
        );
        let outcome = recover_checkpoint_only(&d, &recovered).unwrap();
        assert_eq!(outcome.loaded_records, 49);
        assert_eq!(outcome.stats.parts_loaded, 2, "one part per legacy file");
        assert_eq!(outcome.stats.threads, 4);
        assert_eq!(outcome.watermark, CommitSeq(20));
        assert!(recovered.get(Key(7)).is_none());
        assert_eq!(recovered.get(Key(3)).as_deref(), Some(&b"patched"[..]));
        assert_eq!(recovered.get(Key(42)), Some(42u64.to_le_bytes().into()));
    }

    #[test]
    fn checkpoint_only_loses_post_checkpoint_txns() {
        let log = Arc::new(CommitLog::new(false));
        let primary = CalcStrategy::full(StoreConfig::for_records(64, 16), log.clone());
        let d = dir("ckptonly");
        for k in 0..5 {
            run_set(&primary, &log, k, k);
        }
        primary.checkpoint(&NoopEnv, &d).unwrap();
        run_set(&primary, &log, 99, 99);

        let recovered = CalcStrategy::full(
            StoreConfig::for_records(64, 16),
            Arc::new(CommitLog::new(false)),
        );
        let outcome = recover_checkpoint_only(&d, &recovered).unwrap();
        assert_eq!(outcome.loaded_records, 5);
        assert!(recovered.get(Key(99)).is_none(), "post-checkpoint txn lost");
        assert_eq!(recovered.get(Key(3)).unwrap(), 3u64.to_le_bytes().into());
    }

    /// A crash before the FIRST checkpoint ever completes leaves a bare
    /// directory plus a command log — full recovery must cold-start from
    /// empty state and replay the whole log, not refuse. (The kill-9
    /// smoke hits exactly this window on a freshly started server.)
    #[test]
    fn log_only_cold_start_replays_everything_from_empty() {
        let log = Arc::new(CommitLog::new(true));
        let primary = CalcStrategy::full(StoreConfig::for_records(64, 16), log.clone());
        let d = dir("coldstart");
        for k in 0..7 {
            run_set(&primary, &log, k, 10 + k);
        }
        // No checkpoint was ever taken: the directory holds zero cycles.

        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(SetProc));
        let recovered = CalcStrategy::full(
            StoreConfig::for_records(64, 16),
            Arc::new(CommitLog::new(true)),
        );
        let commands = log.commits_after(CommitSeq::ZERO);
        let outcome = recover(&d, &recovered, &registry, &commands).unwrap();
        assert_eq!(outcome.loaded_records, 0);
        assert_eq!(outcome.checkpoint_files, 0);
        assert_eq!(outcome.watermark, CommitSeq::ZERO);
        assert_eq!(outcome.replayed, 7);
        for k in 0..7u64 {
            assert_eq!(
                recovered.get(Key(k)).unwrap(),
                (10 + k).to_le_bytes().into(),
                "key {k} lost in cold start"
            );
        }
    }

    #[test]
    fn recovery_without_full_checkpoint_fails() {
        let recovered = CalcStrategy::full(
            StoreConfig::for_records(16, 16),
            Arc::new(CommitLog::new(false)),
        );
        let d = dir("nofull");
        let err = recover_checkpoint_only(&d, &recovered).unwrap_err();
        assert!(matches!(err, RecoveryError::NoFullCheckpoint));
    }

    #[test]
    fn unknown_procedure_fails_replay() {
        let log = Arc::new(CommitLog::new(true));
        let primary = CalcStrategy::full(StoreConfig::for_records(64, 16), log.clone());
        let d = dir("unknownproc");
        run_set(&primary, &log, 1, 1);
        primary.checkpoint(&NoopEnv, &d).unwrap();
        run_set(&primary, &log, 2, 2);

        let registry = ProcRegistry::new(); // empty!
        let recovered = CalcStrategy::full(
            StoreConfig::for_records(64, 16),
            Arc::new(CommitLog::new(false)),
        );
        let commands = log.commits_after(CommitSeq::ZERO);
        let err = recover(&d, &recovered, &registry, &commands).unwrap_err();
        assert!(matches!(err, RecoveryError::UnknownProcedure(1)));
    }

    #[test]
    fn fuzzy_recovery_refused() {
        use calc_txn::proc::ProcRegistry;
        let log = Arc::new(CommitLog::new(false));
        let fuzzy = calc_baselines_stub::fuzzy_stub(log);
        let d = dir("fuzzyrefuse");
        let err = recover(&d, fuzzy.as_ref(), &ProcRegistry::new(), &[]).unwrap_err();
        assert!(matches!(err, RecoveryError::NotTransactionConsistent(_)));
    }

    /// Tiny local stand-in so this crate need not depend on
    /// calc-baselines: any strategy reporting non-TC is refused. We wrap
    /// CalcStrategy and override the flag.
    mod calc_baselines_stub {
        use super::*;
        use calc_core::manifest::CheckpointDir;
        use calc_core::strategy::*;
        use calc_storage::mem::MemoryStats;
        use calc_txn::commitlog::PhaseStamp;

        struct NonTc(CalcStrategy);
        impl CheckpointStrategy for NonTc {
            fn name(&self) -> &'static str {
                "NonTC"
            }
            fn transaction_consistent(&self) -> bool {
                false
            }
            fn partial(&self) -> bool {
                false
            }
            fn load_initial(
                &self,
                key: Key,
                value: &[u8],
            ) -> Result<(), calc_storage::dual::StoreError> {
                self.0.load_initial(key, value)
            }
            fn get(&self, key: Key) -> Option<Value> {
                self.0.get(key)
            }
            fn record_count(&self) -> usize {
                self.0.record_count()
            }
            fn txn_begin(&self) -> TxnToken {
                self.0.txn_begin()
            }
            fn txn_end(&self, t: TxnToken) {
                self.0.txn_end(t)
            }
            fn apply_write(
                &self,
                t: &mut TxnToken,
                k: Key,
                v: &[u8],
            ) -> Result<Option<Value>, calc_storage::dual::StoreError> {
                self.0.apply_write(t, k, v)
            }
            fn apply_insert(
                &self,
                t: &mut TxnToken,
                k: Key,
                v: &[u8],
            ) -> Result<bool, calc_storage::dual::StoreError> {
                self.0.apply_insert(t, k, v)
            }
            fn apply_delete(
                &self,
                t: &mut TxnToken,
                k: Key,
            ) -> Result<Option<Value>, calc_storage::dual::StoreError> {
                self.0.apply_delete(t, k)
            }
            fn on_commit(&self, t: &mut TxnToken, s: CommitSeq, c: PhaseStamp) {
                self.0.on_commit(t, s, c)
            }
            fn on_abort(&self, t: &mut TxnToken, u: &[UndoRec]) {
                self.0.on_abort(t, u)
            }
            fn checkpoint(
                &self,
                e: &dyn EngineEnv,
                d: &CheckpointDir,
            ) -> std::io::Result<CheckpointStats> {
                self.0.checkpoint(e, d)
            }
            fn write_base_checkpoint(
                &self,
                d: &CheckpointDir,
            ) -> std::io::Result<CheckpointStats> {
                CheckpointStrategy::write_base_checkpoint(&self.0, d)
            }
            fn memory(&self) -> MemoryStats {
                self.0.memory()
            }
        }

        pub fn fuzzy_stub(log: Arc<CommitLog>) -> Arc<dyn CheckpointStrategy> {
            Arc::new(NonTc(CalcStrategy::full(
                StoreConfig::for_records(16, 16),
                log,
            )))
        }
    }
}
