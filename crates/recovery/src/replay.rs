//! Checkpoint loading and deterministic command-log replay.

use std::time::{Duration, Instant};

use calc_common::types::{CommitSeq, Key, Value};
use calc_core::manifest::CheckpointDir;
use calc_core::merge::materialize_chain_with_vfs;
use calc_core::strategy::CheckpointStrategy;
use calc_txn::commitlog::CommitRecord;
use calc_txn::proc::{ProcRegistry, TxnOps};

/// Why recovery failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// No valid full checkpoint exists in the directory.
    NoFullCheckpoint,
    /// The strategy's checkpoints are not transaction-consistent (Fuzzy):
    /// without a physical redo log they cannot be recovered into a
    /// consistent state — the paper's core argument (§2.1).
    NotTransactionConsistent(&'static str),
    /// A replayed procedure id is not registered.
    UnknownProcedure(u16),
    /// A replayed procedure aborted — impossible under determinism unless
    /// the log or registry is wrong.
    ReplayDiverged(String),
    /// I/O error reading checkpoints.
    Io(std::io::Error),
    /// Store error while loading.
    Store(calc_storage::dual::StoreError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NoFullCheckpoint => write!(f, "no valid full checkpoint found"),
            RecoveryError::NotTransactionConsistent(name) => write!(
                f,
                "{name} checkpoints are not transaction-consistent and cannot be \
                 recovered without a database log"
            ),
            RecoveryError::UnknownProcedure(id) => write!(f, "unknown procedure id {id}"),
            RecoveryError::ReplayDiverged(m) => write!(f, "replay diverged: {m}"),
            RecoveryError::Io(e) => write!(f, "io error: {e}"),
            RecoveryError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

impl From<calc_storage::dual::StoreError> for RecoveryError {
    fn from(e: calc_storage::dual::StoreError) -> Self {
        RecoveryError::Store(e)
    }
}

/// What recovery accomplished.
#[derive(Clone, Debug)]
pub struct RecoveryOutcome {
    /// Records loaded from checkpoints.
    pub loaded_records: u64,
    /// Checkpoint files read (1 full + N partials).
    pub checkpoint_files: usize,
    /// The watermark recovery resumed from.
    pub watermark: CommitSeq,
    /// Transactions replayed from the command log.
    pub replayed: u64,
    /// Time spent loading + merging checkpoints — the "recovery time"
    /// annotated on Figure 4(b).
    pub load_duration: Duration,
    /// Time spent replaying.
    pub replay_duration: Duration,
}

/// Serial replay bridge: routes a procedure's data operations straight to
/// the strategy (no locks — replay is single-threaded in commit order).
struct ReplayOps<'a> {
    strategy: &'a dyn CheckpointStrategy,
    token: calc_core::strategy::TxnToken,
    failed: Option<String>,
}

impl TxnOps for ReplayOps<'_> {
    fn get(&mut self, key: Key) -> Option<Value> {
        self.strategy.get(key)
    }

    fn put(&mut self, key: Key, value: &[u8]) {
        if let Err(e) = self.strategy.apply_write(&mut self.token, key, value) {
            self.failed = Some(format!("put {key}: {e}"));
        }
    }

    fn insert(&mut self, key: Key, value: &[u8]) -> bool {
        match self.strategy.apply_insert(&mut self.token, key, value) {
            Ok(ok) => ok,
            Err(e) => {
                self.failed = Some(format!("insert {key}: {e}"));
                false
            }
        }
    }

    fn delete(&mut self, key: Key) -> bool {
        self.strategy.apply_delete(&mut self.token, key).is_ok()
    }
}

/// Loads the newest recovery chain into a **fresh** strategy instance
/// (checkpoint-only mode, paper use cases 1–2 of §1).
pub fn recover_checkpoint_only(
    dir: &CheckpointDir,
    strategy: &dyn CheckpointStrategy,
) -> Result<RecoveryOutcome, RecoveryError> {
    let start = Instant::now();
    let Some((full, partials)) = dir.recovery_chain()? else {
        return Err(RecoveryError::NoFullCheckpoint);
    };
    let watermark = partials.last().map(|p| p.watermark).unwrap_or(full.watermark);
    let files = 1 + partials.len();
    let state = materialize_chain_with_vfs(dir.vfs().as_ref(), &full, &partials)?;
    let mut loaded = 0u64;
    for (key, value) in &state {
        strategy.load_initial(*key, value)?;
        loaded += 1;
    }
    Ok(RecoveryOutcome {
        loaded_records: loaded,
        checkpoint_files: files,
        watermark,
        replayed: 0,
        load_duration: start.elapsed(),
        replay_duration: Duration::ZERO,
    })
}

/// Full recovery: load the newest chain, then deterministically replay
/// `commands` (commit records with `seq > watermark`, in order) through
/// the registry. Refuses non-transaction-consistent strategies.
pub fn recover(
    dir: &CheckpointDir,
    strategy: &dyn CheckpointStrategy,
    registry: &ProcRegistry,
    commands: &[CommitRecord],
) -> Result<RecoveryOutcome, RecoveryError> {
    if !strategy.transaction_consistent() {
        return Err(RecoveryError::NotTransactionConsistent(strategy.name()));
    }
    let mut outcome = recover_checkpoint_only(dir, strategy)?;
    let replay_start = Instant::now();
    for rec in commands {
        if rec.seq <= outcome.watermark {
            continue; // already reflected in the checkpoint
        }
        let proc = registry
            .get(rec.proc)
            .ok_or(RecoveryError::UnknownProcedure(rec.proc.0))?;
        let mut ops = ReplayOps {
            strategy,
            token: strategy.txn_begin(),
            failed: None,
        };
        let result = proc.run(&rec.params, &mut ops);
        let ReplayOps {
            mut token, failed, ..
        } = ops;
        match (result, failed) {
            (Ok(()), None) => {
                // Replay does not re-append to a commit log, but the commit
                // stamp must be the strategy's CURRENT stamp (not a
                // hardcoded cycle 0): partial strategies dirty-mark the
                // stamp's checkpoint interval, and if the caller has already
                // resumed the id space past the pre-crash files, marks in a
                // stale interval would leave the next partial checkpoint
                // missing every replayed write while its watermark claims
                // to cover them — silent data loss on the next crash.
                let stamp = token.stamp;
                strategy.on_commit(&mut token, rec.seq, stamp);
                strategy.txn_end(token);
                outcome.replayed += 1;
            }
            (Err(e), _) => {
                // A deterministic abort also happened (identically) before
                // the crash, so the original never committed… except it IS
                // in the commit log. Divergence.
                strategy.txn_end(token);
                return Err(RecoveryError::ReplayDiverged(format!("{}: {e}", rec.txn)));
            }
            (Ok(()), Some(msg)) => {
                strategy.txn_end(token);
                return Err(RecoveryError::ReplayDiverged(format!("{}: {msg}", rec.txn)));
            }
        }
    }
    outcome.replay_duration = replay_start.elapsed();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calc_core::calc::CalcStrategy;
    use calc_core::manifest::CheckpointDir;
    use calc_core::strategy::NoopEnv;
    use calc_core::throttle::Throttle;
    use calc_storage::dual::StoreConfig;
    use calc_txn::commitlog::CommitLog;
    use calc_txn::proc::{params, AbortReason, LockRequest, ProcId, Procedure};
    use calc_common::types::TxnId;
    use std::sync::Arc;

    /// Deterministic test procedure: sets key K to a value derived from
    /// params.
    struct SetProc;
    impl Procedure for SetProc {
        fn id(&self) -> ProcId {
            ProcId(1)
        }
        fn name(&self) -> &'static str {
            "set"
        }
        fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
            let mut r = params::Reader::new(p);
            let key = r.u64()?;
            Ok(LockRequest {
                reads: vec![],
                writes: vec![Key(key)],
            })
        }
        fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
            let mut r = params::Reader::new(p);
            let key = Key(r.u64()?);
            let val = r.u64()?;
            let bytes = val.to_le_bytes();
            if ops.get(key).is_some() {
                ops.put(key, &bytes);
            } else {
                ops.insert(key, &bytes);
            }
            Ok(())
        }
    }

    fn dir(name: &str) -> CheckpointDir {
        let d = std::env::temp_dir().join(format!(
            "calc-recovery-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_dir_all(&d);
        CheckpointDir::open(&d, Arc::new(Throttle::unlimited())).unwrap()
    }

    fn set_params(key: u64, val: u64) -> Arc<[u8]> {
        params::Writer::new().u64(key).u64(val).finish()
    }

    fn run_set(
        strategy: &CalcStrategy,
        log: &CommitLog,
        key: u64,
        val: u64,
    ) {
        let proc = SetProc;
        let p = set_params(key, val);
        let mut ops = ReplayOps {
            strategy,
            token: strategy.txn_begin(),
            failed: None,
        };
        proc.run(&p, &mut ops).unwrap();
        assert!(ops.failed.is_none());
        let mut token = ops.token;
        let (seq, stamp) = log.append_commit(TxnId(key * 100 + val), ProcId(1), p);
        strategy.on_commit(&mut token, seq, stamp);
        strategy.txn_end(token);
    }

    #[test]
    fn checkpoint_then_replay_reconstructs_state() {
        let log = Arc::new(CommitLog::new(true));
        let primary = CalcStrategy::full(StoreConfig::for_records(256, 16), log.clone());
        let d = dir("replay");

        // 10 pre-checkpoint transactions.
        for k in 0..10 {
            run_set(&primary, &log, k, k * 2);
        }
        let stats = primary.checkpoint(&NoopEnv, &d).unwrap();
        // 5 post-checkpoint transactions (3 new keys, 2 overwrites).
        for k in 8..13 {
            run_set(&primary, &log, k, 1000 + k);
        }

        // Crash. Fresh strategy + recovery.
        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(SetProc));
        let recovered = CalcStrategy::full(
            StoreConfig::for_records(256, 16),
            Arc::new(CommitLog::new(true)),
        );
        let commands = log.commits_after(CommitSeq::ZERO);
        let outcome = recover(&d, &recovered, &registry, &commands).unwrap();
        assert_eq!(outcome.loaded_records, 10);
        assert_eq!(outcome.replayed, 5);
        assert_eq!(outcome.watermark, stats.watermark);

        // Recovered state must equal primary state.
        for k in 0..13u64 {
            assert_eq!(
                recovered.get(Key(k)),
                primary.get(Key(k)),
                "key {k} diverged"
            );
        }
        assert_eq!(recovered.record_count(), primary.record_count());
    }

    /// ISSUE satellite: when the newest full checkpoint is corrupt on
    /// disk, recovery must quarantine it and fall back to the previous
    /// full, paying with a longer command-log replay — and lose nothing.
    #[test]
    fn corrupt_latest_full_falls_back_to_previous_full() {
        let log = Arc::new(CommitLog::new(true));
        let primary = CalcStrategy::full(StoreConfig::for_records(256, 16), log.clone());
        let d = dir("corruptfull");

        for k in 0..10 {
            run_set(&primary, &log, k, k * 2);
        }
        let first = primary.checkpoint(&NoopEnv, &d).unwrap();
        for k in 10..15 {
            run_set(&primary, &log, k, 1000 + k);
        }
        primary.checkpoint(&NoopEnv, &d).unwrap();
        for k in 15..18 {
            run_set(&primary, &log, k, 2000 + k);
        }

        // Corrupt the newest full's body (bit-rot past the header); its
        // checksum no longer verifies.
        let newest = d.path().join("ckpt-0000000001-full.calc");
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let mut registry = ProcRegistry::new();
        registry.register(Arc::new(SetProc));
        let recovered = CalcStrategy::full(
            StoreConfig::for_records(256, 16),
            Arc::new(CommitLog::new(true)),
        );
        let commands = log.commits_after(CommitSeq::ZERO);
        let outcome = recover(&d, &recovered, &registry, &commands).unwrap();

        // Fell back to full #1: 10 loaded records, the older watermark,
        // and the 8 post-#1 transactions recovered via replay instead.
        assert_eq!(outcome.loaded_records, 10);
        assert_eq!(outcome.watermark, first.watermark);
        assert_eq!(outcome.replayed, 8);
        assert_eq!(d.quarantined_count(), 1);
        assert!(
            d.path()
                .join("ckpt-0000000001-full.calc.quarantine")
                .exists(),
            "corrupt file not set aside"
        );
        for k in 0..18u64 {
            assert_eq!(
                recovered.get(Key(k)),
                primary.get(Key(k)),
                "key {k} diverged after fallback"
            );
        }
        assert_eq!(recovered.record_count(), primary.record_count());
    }

    #[test]
    fn checkpoint_only_loses_post_checkpoint_txns() {
        let log = Arc::new(CommitLog::new(false));
        let primary = CalcStrategy::full(StoreConfig::for_records(64, 16), log.clone());
        let d = dir("ckptonly");
        for k in 0..5 {
            run_set(&primary, &log, k, k);
        }
        primary.checkpoint(&NoopEnv, &d).unwrap();
        run_set(&primary, &log, 99, 99);

        let recovered = CalcStrategy::full(
            StoreConfig::for_records(64, 16),
            Arc::new(CommitLog::new(false)),
        );
        let outcome = recover_checkpoint_only(&d, &recovered).unwrap();
        assert_eq!(outcome.loaded_records, 5);
        assert!(recovered.get(Key(99)).is_none(), "post-checkpoint txn lost");
        assert_eq!(recovered.get(Key(3)).unwrap(), 3u64.to_le_bytes().into());
    }

    #[test]
    fn recovery_without_full_checkpoint_fails() {
        let recovered = CalcStrategy::full(
            StoreConfig::for_records(16, 16),
            Arc::new(CommitLog::new(false)),
        );
        let d = dir("nofull");
        let err = recover_checkpoint_only(&d, &recovered).unwrap_err();
        assert!(matches!(err, RecoveryError::NoFullCheckpoint));
    }

    #[test]
    fn unknown_procedure_fails_replay() {
        let log = Arc::new(CommitLog::new(true));
        let primary = CalcStrategy::full(StoreConfig::for_records(64, 16), log.clone());
        let d = dir("unknownproc");
        run_set(&primary, &log, 1, 1);
        primary.checkpoint(&NoopEnv, &d).unwrap();
        run_set(&primary, &log, 2, 2);

        let registry = ProcRegistry::new(); // empty!
        let recovered = CalcStrategy::full(
            StoreConfig::for_records(64, 16),
            Arc::new(CommitLog::new(false)),
        );
        let commands = log.commits_after(CommitSeq::ZERO);
        let err = recover(&d, &recovered, &registry, &commands).unwrap_err();
        assert!(matches!(err, RecoveryError::UnknownProcedure(1)));
    }

    #[test]
    fn fuzzy_recovery_refused() {
        use calc_txn::proc::ProcRegistry;
        let log = Arc::new(CommitLog::new(false));
        let fuzzy = calc_baselines_stub::fuzzy_stub(log);
        let d = dir("fuzzyrefuse");
        let err = recover(&d, fuzzy.as_ref(), &ProcRegistry::new(), &[]).unwrap_err();
        assert!(matches!(err, RecoveryError::NotTransactionConsistent(_)));
    }

    /// Tiny local stand-in so this crate need not depend on
    /// calc-baselines: any strategy reporting non-TC is refused. We wrap
    /// CalcStrategy and override the flag.
    mod calc_baselines_stub {
        use super::*;
        use calc_core::manifest::CheckpointDir;
        use calc_core::strategy::*;
        use calc_storage::mem::MemoryStats;
        use calc_txn::commitlog::PhaseStamp;

        struct NonTc(CalcStrategy);
        impl CheckpointStrategy for NonTc {
            fn name(&self) -> &'static str {
                "NonTC"
            }
            fn transaction_consistent(&self) -> bool {
                false
            }
            fn partial(&self) -> bool {
                false
            }
            fn load_initial(
                &self,
                key: Key,
                value: &[u8],
            ) -> Result<(), calc_storage::dual::StoreError> {
                self.0.load_initial(key, value)
            }
            fn get(&self, key: Key) -> Option<Value> {
                self.0.get(key)
            }
            fn record_count(&self) -> usize {
                self.0.record_count()
            }
            fn txn_begin(&self) -> TxnToken {
                self.0.txn_begin()
            }
            fn txn_end(&self, t: TxnToken) {
                self.0.txn_end(t)
            }
            fn apply_write(
                &self,
                t: &mut TxnToken,
                k: Key,
                v: &[u8],
            ) -> Result<Option<Value>, calc_storage::dual::StoreError> {
                self.0.apply_write(t, k, v)
            }
            fn apply_insert(
                &self,
                t: &mut TxnToken,
                k: Key,
                v: &[u8],
            ) -> Result<bool, calc_storage::dual::StoreError> {
                self.0.apply_insert(t, k, v)
            }
            fn apply_delete(
                &self,
                t: &mut TxnToken,
                k: Key,
            ) -> Result<Option<Value>, calc_storage::dual::StoreError> {
                self.0.apply_delete(t, k)
            }
            fn on_commit(&self, t: &mut TxnToken, s: CommitSeq, c: PhaseStamp) {
                self.0.on_commit(t, s, c)
            }
            fn on_abort(&self, t: &mut TxnToken, u: &[UndoRec]) {
                self.0.on_abort(t, u)
            }
            fn checkpoint(
                &self,
                e: &dyn EngineEnv,
                d: &CheckpointDir,
            ) -> std::io::Result<CheckpointStats> {
                self.0.checkpoint(e, d)
            }
            fn write_base_checkpoint(
                &self,
                d: &CheckpointDir,
            ) -> std::io::Result<CheckpointStats> {
                CheckpointStrategy::write_base_checkpoint(&self.0, d)
            }
            fn memory(&self) -> MemoryStats {
                self.0.memory()
            }
        }

        pub fn fuzzy_stub(log: Arc<CommitLog>) -> Arc<dyn CheckpointStrategy> {
            Arc::new(NonTc(CalcStrategy::full(
                StoreConfig::for_records(16, 16),
                log,
            )))
        }
    }
}
