//! Incremental command-log tailing for warm standbys.
//!
//! [`read_dir_logs`](crate::read_dir_logs) and
//! [`CommandLogStream`](crate::logfile::CommandLogStream) replay a log
//! directory exactly once, at startup. A warm standby instead follows a
//! *live* primary's segment directory: new records are appended behind
//! its back, segments rotate, retention deletes sealed segments, and the
//! newest segment routinely ends mid-record because an append is in
//! flight. [`LogTailer`] generalizes the one-shot scan into a polling
//! cursor that tolerates all of that:
//!
//! * **In-flight rotation.** The writer seals (fsyncs) segment `i`
//!   *before* creating `i+1`, so once a higher-indexed segment is listed,
//!   every lower segment is complete. The cursor advances across a clean
//!   EOF whenever a higher segment exists.
//! * **Torn tails.** A torn or implausible record in the *highest* listed
//!   segment is an append in flight, not corruption: the cursor stays at
//!   the last trusted byte offset and the poll reports
//!   [`TailStatus::CaughtUp`] with the untrusted bytes as
//!   `pending_bytes`; the next poll re-reads from the trusted offset. A
//!   torn record in a *sealed* segment (a higher index exists) is the
//!   same permanent trust boundary `read_dir_logs` stops at — the tailer
//!   reports [`TailStatus::Wedged`] and refuses to skip past it.
//! * **Retention truncation.** If the cursor's segment disappears while
//!   newer segments survive, retention truncated below a checkpoint
//!   watermark the tailer had not reached. The poll reports
//!   [`TailStatus::LostPrefix`]; the caller re-bootstraps its state from
//!   the covering checkpoint, and the tailer re-anchors itself to the
//!   smallest surviving segment on the next poll.
//!
//! The tailer never does seq arithmetic to detect gaps — engine commit
//! seqs are not dense (checkpoint phase transitions consume seqs), so
//! the only trustworthy signals are segment names and byte offsets.

use std::io::{self, BufReader, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::Arc;

use calc_common::vfs::Vfs;
use calc_txn::commitlog::CommitRecord;

use crate::logfile::{list_segments, read_one_outcome, ReadOutcome};

/// How a [`LogTailer::poll`] left the cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// Every trusted byte currently on disk has been applied. A non-zero
    /// `pending_bytes` means the newest segment ends in an in-flight
    /// (torn) append that the next poll will re-read.
    CaughtUp,
    /// The cursor's segment was deleted while newer segments survive:
    /// retention truncated commits the tailer never applied. Re-bootstrap
    /// from the covering checkpoint; the tailer re-anchors to the
    /// smallest surviving segment on the next poll.
    LostPrefix,
    /// A torn or corrupt record inside a *sealed* segment — the same
    /// permanent trust boundary `read_dir_logs` stops at. The tailer
    /// refuses to skip records and every future poll returns `Wedged`.
    Wedged,
}

/// Result of one [`LogTailer::poll`].
#[derive(Debug, Clone, Copy)]
pub struct TailPoll {
    /// Records decoded and handed to the sink by this poll.
    pub applied: u64,
    /// Bytes on disk beyond the last trusted record (an in-flight append
    /// for `CaughtUp`, the untrusted remainder for `Wedged`).
    pub pending_bytes: u64,
    /// Cursor state after the poll.
    pub status: TailStatus,
}

/// A polling cursor over a live segmented command-log directory.
pub struct LogTailer {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    /// Segment index the cursor points into. Meaningful only when
    /// `anchored`.
    seg: u64,
    /// Byte offset just past the last fully-decoded record of `seg`.
    offset: u64,
    /// False until the cursor has attached to a real segment (fresh
    /// tailer, or after a `LostPrefix`): the next poll anchors to the
    /// smallest listed segment.
    anchored: bool,
    wedged: bool,
}

impl LogTailer {
    /// Creates a tailer over `dir`. The cursor anchors to the smallest
    /// existing segment on the first poll (segments already truncated by
    /// retention are covered by the checkpoint the caller bootstrapped
    /// from, not by the log).
    pub fn new(vfs: Arc<dyn Vfs>, dir: impl Into<PathBuf>) -> Self {
        LogTailer {
            vfs,
            dir: dir.into(),
            seg: 0,
            offset: 0,
            anchored: false,
            wedged: false,
        }
    }

    /// Cursor position as `(segment index, trusted byte offset)`, or
    /// `None` while unanchored.
    pub fn cursor(&self) -> Option<(u64, u64)> {
        self.anchored.then_some((self.seg, self.offset))
    }

    /// Whether a sealed-segment tear has permanently wedged the tailer.
    pub fn wedged(&self) -> bool {
        self.wedged
    }

    /// Bytes on disk beyond the cursor — a cheap lag estimate taken
    /// without decoding anything. Unanchored tailers count the whole
    /// directory.
    pub fn lag_bytes(&self) -> io::Result<u64> {
        let segments = list_segments(self.vfs.as_ref(), &self.dir)?;
        let mut behind = 0u64;
        for (i, path) in &segments {
            let len = self.vfs.len(path)?;
            if !self.anchored || *i > self.seg {
                behind += len;
            } else if *i == self.seg {
                behind += len.saturating_sub(self.offset);
            }
        }
        Ok(behind)
    }

    /// Reads every trusted record past the cursor, invoking `sink` on
    /// each in commit order and advancing the cursor over it. An `Err`
    /// from the sink aborts the poll *without* advancing past that
    /// record, so a retried poll re-delivers it.
    pub fn poll(
        &mut self,
        sink: &mut dyn FnMut(&CommitRecord) -> io::Result<()>,
    ) -> io::Result<TailPoll> {
        if self.wedged {
            return Ok(TailPoll {
                applied: 0,
                pending_bytes: self.lag_bytes().unwrap_or(0),
                status: TailStatus::Wedged,
            });
        }
        let segments = list_segments(self.vfs.as_ref(), &self.dir)?;
        if segments.is_empty() {
            if self.anchored {
                // Everything the cursor knew about is gone.
                self.anchored = false;
                return Ok(self.lost_prefix());
            }
            return Ok(TailPoll {
                applied: 0,
                pending_bytes: 0,
                status: TailStatus::CaughtUp,
            });
        }
        if !self.anchored {
            self.seg = segments[0].0;
            self.offset = 0;
            self.anchored = true;
        }
        let Some(mut idx) = segments.iter().position(|&(i, _)| i == self.seg) else {
            // The cursor's segment vanished. Surviving indices are always
            // contiguous (truncation removes lowest-first and a restarted
            // writer starts above the highest survivor), so whether newer
            // segments exist or the cursor somehow ran past the top, the
            // prefix between the cursor and the survivors is gone.
            self.anchored = false;
            return Ok(self.lost_prefix());
        };
        let mut applied = 0u64;
        'segments: loop {
            let (_, path) = &segments[idx];
            let mut file = match self.vfs.open_read(path) {
                Ok(f) => f,
                // Deleted by retention between our listing and this open
                // (a live primary truncates concurrently with our reads):
                // same lost-prefix as a pre-listing deletion, not an error.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    self.anchored = false;
                    return Ok(self.lost_prefix_with(applied));
                }
                Err(e) => return Err(e),
            };
            file.seek(SeekFrom::Start(self.offset))?;
            let mut input = BufReader::with_capacity(64 << 10, file);
            loop {
                match read_one_outcome(&mut input)? {
                    ReadOutcome::Record(rec) => {
                        // 8-byte head + seq/txn/proc (18) + params.
                        let consumed = 8 + 18 + rec.params.len() as u64;
                        sink(&rec)?;
                        self.offset += consumed;
                        applied += 1;
                    }
                    ReadOutcome::CleanEof => {
                        if idx + 1 < segments.len() {
                            // Rotation seals (fsyncs) a segment before
                            // creating its successor: a higher listed
                            // index proves this one is complete.
                            idx += 1;
                            self.seg = segments[idx].0;
                            self.offset = 0;
                            continue 'segments;
                        }
                        return Ok(TailPoll {
                            applied,
                            pending_bytes: 0,
                            status: TailStatus::CaughtUp,
                        });
                    }
                    ReadOutcome::Torn => {
                        if idx + 1 < segments.len() {
                            // Torn inside a sealed segment: real
                            // corruption, the permanent trust boundary.
                            self.wedged = true;
                            return Ok(TailPoll {
                                applied,
                                pending_bytes: self.lag_bytes().unwrap_or(0),
                                status: TailStatus::Wedged,
                            });
                        }
                        // Torn tail of the active segment: an append in
                        // flight. Hold the cursor at the trusted offset
                        // and re-read on the next poll. (If the writer
                        // crashed here, its restart creates a higher
                        // segment and the tear becomes a sealed wedge.)
                        let len = self.vfs.len(path).unwrap_or(self.offset);
                        return Ok(TailPoll {
                            applied,
                            pending_bytes: len.saturating_sub(self.offset),
                            status: TailStatus::CaughtUp,
                        });
                    }
                }
            }
        }
    }

    fn lost_prefix(&self) -> TailPoll {
        self.lost_prefix_with(0)
    }

    fn lost_prefix_with(&self, applied: u64) -> TailPoll {
        TailPoll {
            applied,
            pending_bytes: 0,
            status: TailStatus::LostPrefix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calc_common::types::{CommitSeq, TxnId};
    use calc_common::vfs::OsVfs;
    use calc_txn::proc::ProcId;

    use crate::logfile::{
        read_dir_logs, segment_file_name, truncate_segments_below, SegmentedLogWriter,
    };

    fn tmpdir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "calc-tailer-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn rec(seq: u64, params: &[u8]) -> CommitRecord {
        CommitRecord {
            seq: CommitSeq(seq),
            txn: TxnId(seq * 10),
            proc: ProcId(3),
            params: Arc::from(params.to_vec().into_boxed_slice()),
        }
    }

    fn vfs() -> Arc<dyn Vfs> {
        Arc::new(OsVfs)
    }

    #[test]
    fn tails_across_rotation_incrementally() {
        let dir = tmpdir("rotate");
        let mut w = SegmentedLogWriter::create(vfs(), &dir, 0).unwrap(); // min clamp: 512
        let mut t = LogTailer::new(vfs(), &dir);
        let mut seen = Vec::new();
        let mut sink = |r: &CommitRecord| {
            seen.push(r.seq.0);
            Ok(())
        };

        // Nothing yet: empty dir is CaughtUp, not an error.
        let p = t.poll(&mut sink).unwrap();
        assert_eq!(p.status, TailStatus::CaughtUp);
        assert_eq!(p.applied, 0);

        for i in 0..20u64 {
            w.append(&rec(i + 1, &[7u8; 100])).unwrap();
        }
        w.sync().unwrap();
        assert!(w.rotations() > 0, "120-byte records must rotate 512-byte segments");
        let p = t.poll(&mut sink).unwrap();
        assert_eq!(p.status, TailStatus::CaughtUp);
        assert_eq!(p.applied, 20);
        assert_eq!(p.pending_bytes, 0);

        // Incremental: more appends land mid-directory, next poll only
        // sees the delta.
        for i in 20..30u64 {
            w.append(&rec(i + 1, &[7u8; 100])).unwrap();
        }
        w.sync().unwrap();
        let p = t.poll(&mut sink).unwrap();
        assert_eq!(p.applied, 10);
        assert_eq!(seen, (1..=30).collect::<Vec<_>>());
        assert_eq!(
            seen,
            read_dir_logs(vfs().as_ref(), &dir)
                .unwrap()
                .iter()
                .map(|r| r.seq.0)
                .collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_active_tail_backs_off_then_resumes() {
        let dir = tmpdir("torn-active");
        let seg0 = dir.join(segment_file_name(0));
        // One good record, then a bare 4-byte fragment of a head.
        let good = {
            let mut w =
                crate::logfile::CommandLogWriter::create_with_vfs(vfs().as_ref(), &seg0).unwrap();
            w.append(&rec(1, b"alpha")).unwrap();
            w.sync().unwrap();
            std::fs::metadata(&seg0).unwrap().len()
        };
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&seg0).unwrap();
        f.write_all(&[0xAA, 0xBB, 0xCC, 0xDD]).unwrap();
        f.sync_all().unwrap();

        let mut t = LogTailer::new(vfs(), &dir);
        let mut seen = Vec::new();
        let mut sink = |r: &CommitRecord| {
            seen.push(r.seq.0);
            Ok(())
        };
        let p = t.poll(&mut sink).unwrap();
        assert_eq!(p.status, TailStatus::CaughtUp);
        assert_eq!(p.applied, 1);
        assert_eq!(p.pending_bytes, 4, "the torn fragment is pending, not consumed");
        assert_eq!(t.cursor(), Some((0, good)));

        // Re-polling without progress is stable.
        let p = t.poll(&mut sink).unwrap();
        assert_eq!(p.applied, 0);
        assert_eq!(p.status, TailStatus::CaughtUp);

        // The append "completes": replace the fragment with a whole
        // hand-encoded record at the trusted offset.
        let f = std::fs::OpenOptions::new().write(true).open(&seg0).unwrap();
        f.set_len(good).unwrap();
        drop(f);
        let r = rec(2, b"beta");
        let mut body = Vec::new();
        body.extend_from_slice(&r.seq.0.to_le_bytes());
        body.extend_from_slice(&r.txn.0.to_le_bytes());
        body.extend_from_slice(&r.proc.0.to_le_bytes());
        body.extend_from_slice(&r.params);
        let mut out = Vec::new();
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&calc_common::crc::crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        let mut f = std::fs::OpenOptions::new().append(true).open(&seg0).unwrap();
        f.write_all(&out).unwrap();
        f.sync_all().unwrap();
        drop(f);

        let p = t.poll(&mut sink).unwrap();
        assert_eq!(p.applied, 1);
        assert_eq!(p.status, TailStatus::CaughtUp);
        assert_eq!(p.pending_bytes, 0);
        assert_eq!(seen, vec![1, 2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_sealed_segment_wedges_permanently() {
        let dir = tmpdir("wedge");
        let seg0 = dir.join(segment_file_name(0));
        {
            let mut w =
                crate::logfile::CommandLogWriter::create_with_vfs(vfs().as_ref(), &seg0).unwrap();
            w.append(&rec(1, b"ok")).unwrap();
            w.sync().unwrap();
        }
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&seg0).unwrap();
        f.write_all(&[0x01, 0x02, 0x03]).unwrap();
        f.sync_all().unwrap();
        // A higher segment exists, so the tear is sealed corruption.
        let seg1 = dir.join(segment_file_name(1));
        {
            let mut w =
                crate::logfile::CommandLogWriter::create_with_vfs(vfs().as_ref(), &seg1).unwrap();
            w.append(&rec(2, b"later")).unwrap();
            w.sync().unwrap();
        }
        let mut t = LogTailer::new(vfs(), &dir);
        let mut seen = Vec::new();
        let mut sink = |r: &CommitRecord| {
            seen.push(r.seq.0);
            Ok(())
        };
        let p = t.poll(&mut sink).unwrap();
        assert_eq!(p.status, TailStatus::Wedged);
        assert!(t.wedged());
        let p = t.poll(&mut sink).unwrap();
        assert_eq!(p.status, TailStatus::Wedged, "wedge is sticky");
        assert_eq!(p.applied, 0);
        assert_eq!(seen, vec![1], "records before the tear are applied, none after");
        // Same trust boundary as the one-shot reader.
        assert_eq!(read_dir_logs(vfs().as_ref(), &dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_cursor_segment_reports_lost_prefix_then_reanchors() {
        let dir = tmpdir("lost-prefix");
        let mut w = SegmentedLogWriter::create(vfs(), &dir, 0).unwrap();
        for i in 0..20u64 {
            w.append(&rec(i + 1, &[9u8; 100])).unwrap();
        }
        w.sync().unwrap();
        let mut t = LogTailer::new(vfs(), &dir);
        // Anchor at segment 0 but apply nothing (sink sees everything;
        // use a partial poll by anchoring then truncating).
        let mut seen = Vec::new();
        let mut sink = |r: &CommitRecord| {
            seen.push(r.seq.0);
            Ok(())
        };
        let p = t.poll(&mut sink).unwrap();
        assert_eq!(p.applied, 20);
        // Retention removes sealed segments below seq 15; the cursor sits
        // in the active (highest) segment so this poll is unaffected.
        let stats = truncate_segments_below(vfs().as_ref(), &dir, CommitSeq(15)).unwrap();
        assert!(stats.removed > 0);
        let p = t.poll(&mut sink).unwrap();
        assert_eq!(p.status, TailStatus::CaughtUp, "cursor past the truncation point");

        // Now simulate truncation overtaking the cursor: point a fresh
        // tailer at segment 0 (gone) by anchoring before truncation.
        let dir2 = tmpdir("lost-prefix-2");
        let mut w2 = SegmentedLogWriter::create(vfs(), &dir2, 0).unwrap();
        for i in 0..20u64 {
            w2.append(&rec(i + 1, &[9u8; 100])).unwrap();
        }
        w2.sync().unwrap();
        let mut t2 = LogTailer::new(vfs(), &dir2);
        let mut first = true;
        let mut seen2 = Vec::new();
        // Anchor with a sink that aborts after one record, leaving the
        // cursor low in segment 0.
        let err = t2
            .poll(&mut |r: &CommitRecord| {
                if first {
                    first = false;
                    seen2.push(r.seq.0);
                    Ok(())
                } else {
                    Err(io::Error::other("stop"))
                }
            })
            .unwrap_err();
        assert_eq!(err.to_string(), "stop");
        assert_eq!(t2.cursor().unwrap().0, 0);
        truncate_segments_below(vfs().as_ref(), &dir2, CommitSeq(15)).unwrap();
        let p = t2.poll(&mut |r| {
            seen2.push(r.seq.0);
            Ok(())
        });
        assert_eq!(p.unwrap().status, TailStatus::LostPrefix);
        // After the caller re-bootstraps, the next poll re-anchors at the
        // smallest survivor and replays from there (caller dedups by seq).
        let p = t2
            .poll(&mut |r| {
                seen2.push(r.seq.0);
                Ok(())
            })
            .unwrap();
        assert_eq!(p.status, TailStatus::CaughtUp);
        assert!(p.applied > 0);
        assert_eq!(
            seen2.last().copied(),
            Some(20),
            "re-anchored tail reaches the live end"
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn lag_bytes_tracks_unapplied_tail() {
        let dir = tmpdir("lag");
        let mut w = SegmentedLogWriter::create(vfs(), &dir, 0).unwrap();
        let mut t = LogTailer::new(vfs(), &dir);
        assert_eq!(t.lag_bytes().unwrap(), 0);
        for i in 0..8u64 {
            w.append(&rec(i + 1, &[1u8; 100])).unwrap();
        }
        w.sync().unwrap();
        let behind = t.lag_bytes().unwrap();
        assert_eq!(behind, 8 * 126, "8 records of 126 bytes on disk, none applied");
        t.poll(&mut |_| Ok(())).unwrap();
        assert_eq!(t.lag_bytes().unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
