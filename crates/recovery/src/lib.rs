//! Crash recovery (§3 of the paper).
//!
//! Three recovery modes, matching the paper's application classes (§1):
//!
//! 1. **Checkpoint-only** (NoSQL / K-safety use cases): load the most
//!    recent complete checkpoint; transactions committed after it are
//!    lost, bounded by the checkpoint frequency.
//! 2. **Checkpoint + deterministic replay** (command logging, VoltDB
//!    style): after loading, replay the command log from the checkpoint's
//!    virtual-point-of-consistency watermark. Stored procedures are
//!    deterministic functions of their parameters, so serial replay in
//!    commit order reproduces the exact pre-crash state.
//! 3. **pCALC**: if the newest checkpoint is partial, first collapse the
//!    recovery chain (newest full + newer partials, §3.2) — the
//!    runtime-vs-recovery-time tradeoff Figure 4 quantifies.
//!
//! None of CALC's in-memory structures need cleanup on recovery: "the
//! 'stable' record versions, the stable status bit vector, etc., get wiped
//! out along with the rest of volatile memory upon a crash" — recovery
//! always starts from a freshly-initialized strategy.
//!
//! [`logfile`] adds the durable command log the replay mode depends on: an
//! append-only file of `(seq, proc, params)` records with group-commit
//! flushing, CRC-protected per record so a torn tail is truncated, not
//! trusted.

#![warn(missing_docs)]

pub mod group_commit;
pub mod logfile;
pub mod replay;
pub mod tailer;

pub use group_commit::{
    BatchObserver, DurabilityTicket, GroupCommitConfig, GroupCommitter, LogBackend, SyncError,
};
pub use logfile::{
    read_dir_logs, truncate_segments_below, CommandLogReader, CommandLogWriter,
    SegmentedLogWriter, TruncateStats,
};
pub use replay::{apply_commit, recover, recover_checkpoint_only, RecoveryError, RecoveryOutcome};
pub use tailer::{LogTailer, TailPoll, TailStatus};
