//! Group commit: one fsync per batch of concurrent commits.
//!
//! Per-commit fsync is the durability wall the paper's command-logging
//! story runs into under concurrent load: every committer paying its own
//! fsync serializes the whole system behind the disk's sync latency. The
//! classic fix — group commit — lets concurrent committers enqueue onto
//! the active log and a dedicated sync thread fsync *once* per batch:
//! the first commit of a batch opens a small deadline window
//! ([`GroupCommitConfig::window`]); everything that arrives before the
//! deadline (or until [`GroupCommitConfig::max_batch`] records) is
//! appended, then a single `fsync` makes the whole batch durable and
//! every waiter is woken at once.
//!
//! Two acknowledgement disciplines coexist on the same committer:
//!
//! * [`GroupCommitter::submit`] — fire-and-forget, the paper's
//!   low-latency ack-before-fsync choice: a crash can lose the unflushed
//!   tail, bounded by the window.
//! * [`GroupCommitter::submit_durable`] — returns a [`DurabilityTicket`];
//!   waiting on it blocks until the batch's fsync completed, so an
//!   acknowledgement implies the commit survives any later crash
//!   (ack-after-fsync, what a network server must promise).
//!
//! Error discipline (graceful degradation, not sudden death):
//!
//! * An **append** failure is immediately fatal: the record may be torn
//!   mid-file, and appending more records after a tear would put valid
//!   commits *behind* the point where replay stops — acknowledged writes
//!   would silently vanish. The gap-free-prefix invariant of
//!   [`crate::logfile::read_dir_logs`] is worth more than availability.
//! * A **sync** failure is retried: the batch's bytes are already
//!   appended, and fsync is idempotent, so the thread retries with
//!   seeded capped-exponential backoff ([`calc_common::Backoff`]) up to
//!   [`GroupCommitConfig::sync_retries`] times before giving up. A
//!   transient sync-error window heals invisibly — waiters just see a
//!   slightly slower ack.
//! * **ENOSPC** on sync flips the committer into a *read-only degraded
//!   mode* ([`GroupCommitter::read_only`], surfaced to operators through
//!   the engine's `Health`): the thread keeps retrying the sync for up to
//!   [`GroupCommitConfig::enospc_window`] while the caller sheds new
//!   writes and runs an emergency retention pass to free space. If space
//!   returns inside the window, the sync succeeds, the mode clears, and
//!   every waiter is acknowledged — self-healing with zero lost acks.
//!
//! Only when retries are exhausted does the old discipline apply: every
//! waiter in the failed batch — and every later submitter — gets the
//! typed [`SyncError`] engines already expect; the sync thread keeps
//! draining the channel so queued tickets fail fast instead of wedging
//! until their timeout. The in-memory engine stays alive (degraded
//! durability), exactly like the pre-group-commit logger thread.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};

use calc_common::Backoff;
use calc_txn::commitlog::CommitRecord;

use crate::logfile::{CommandLogWriter, SegmentedLogWriter};

/// Why a durability wait (or a [`GroupCommitter::flush`] handshake) could
/// not complete. None of these abort the process: a dead sync thread
/// means the durable log stopped growing (degraded durability), not that
/// the engine must die — callers decide how loudly to react.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// The sync thread had already exited (earlier append/sync I/O
    /// error) when the request was submitted.
    LoggerExited,
    /// The sync thread died after accepting the request, before
    /// acknowledging it.
    LoggerDied,
    /// No acknowledgement within the timeout — the sync thread is wedged.
    Timeout(Duration),
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::LoggerExited => {
                write!(f, "command logger exited before the flush (I/O error?)")
            }
            SyncError::LoggerDied => write!(f, "command logger died mid-flush (I/O error?)"),
            SyncError::Timeout(d) => {
                write!(f, "no flush acknowledgement within {d:?} (logger wedged)")
            }
        }
    }
}

impl std::error::Error for SyncError {}

/// The durable log a [`GroupCommitter`] appends to: one flat file or a
/// rotating segment directory. Segmentation/rotation and retention-driven
/// truncation keep working underneath group commit because the batch
/// append goes through the same writers the serial path used.
pub trait LogBackend: Send {
    /// Appends one record (buffered).
    fn append(&mut self, rec: &CommitRecord) -> io::Result<()>;
    /// Makes everything appended so far durable.
    fn sync(&mut self) -> io::Result<()>;
}

impl LogBackend for CommandLogWriter {
    fn append(&mut self, rec: &CommitRecord) -> io::Result<()> {
        CommandLogWriter::append(self, rec)
    }
    fn sync(&mut self) -> io::Result<()> {
        CommandLogWriter::sync(self)
    }
}

impl LogBackend for SegmentedLogWriter {
    fn append(&mut self, rec: &CommitRecord) -> io::Result<()> {
        SegmentedLogWriter::append(self, rec)
    }
    fn sync(&mut self) -> io::Result<()> {
        SegmentedLogWriter::sync(self)
    }
}

/// Batching and degradation knobs.
#[derive(Clone, Copy, Debug)]
pub struct GroupCommitConfig {
    /// Deadline window: the first commit of a batch waits at most this
    /// long for company before the fsync fires. Larger windows build
    /// bigger batches (higher throughput) at the cost of commit latency.
    pub window: Duration,
    /// Hard batch-size cap: the fsync fires immediately once this many
    /// records are batched, even inside the window. `1` degenerates to
    /// per-commit fsync (the baseline the benchmark compares against).
    pub max_batch: usize,
    /// How many times a failed batch *sync* (never an append — see the
    /// module docs) is retried before the committer dies. 0 restores the
    /// old first-failure-is-fatal discipline.
    pub sync_retries: u32,
    /// Backoff base delay between sync retries.
    pub retry_base: Duration,
    /// Backoff delay cap between sync retries.
    pub retry_cap: Duration,
    /// Seed for the deterministic retry jitter.
    pub retry_seed: u64,
    /// How long an ENOSPC sync failure keeps being retried (read-only
    /// degraded mode) before the committer gives up and dies. Within the
    /// window, freed disk space self-heals the committer with every
    /// pending acknowledgement intact.
    pub enospc_window: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            window: Duration::from_millis(2),
            max_batch: 4096,
            sync_retries: 3,
            retry_base: Duration::from_millis(2),
            retry_cap: Duration::from_millis(100),
            retry_seed: 0x6C06_5EED,
            enospc_window: Duration::from_secs(5),
        }
    }
}

/// Observer invoked after every successful non-empty batch with
/// `(records_in_batch, fsync_latency)` — how the engine feeds its
/// `Health` counters without this crate depending on the engine.
pub type BatchObserver = Box<dyn Fn(usize, Duration) + Send + Sync>;

/// Observer invoked on read-only-mode transitions: `true` entering
/// (ENOSPC detected on the command log), `false` healing (space
/// returned, sync succeeded). The engine hooks this to surface the flag
/// through `Health` and to trigger an emergency retention pass.
pub type ReadOnlyObserver = Box<dyn Fn(bool) + Send + Sync>;

/// A waiter's half of one durability acknowledgement.
type AckSender = Sender<Result<(), SyncError>>;

enum Msg {
    Commit {
        rec: CommitRecord,
        ack: Option<AckSender>,
    },
    /// Close the current batch immediately, fsync, and acknowledge —
    /// the `sync_command_log` handshake.
    Flush(AckSender),
}

/// A claim check for one commit's durability: wait on it *outside* any
/// engine lock to block until the commit's batch has been fsynced.
pub struct DurabilityTicket {
    rx: Option<Receiver<Result<(), SyncError>>>,
    /// Pre-resolved failure (the committer was already dead at submit).
    dead: bool,
}

impl DurabilityTicket {
    fn dead() -> Self {
        DurabilityTicket { rx: None, dead: true }
    }

    /// Blocks until the batch containing this commit is durable (or the
    /// sync thread died / the timeout passed).
    pub fn wait(self, timeout: Duration) -> Result<(), SyncError> {
        if self.dead {
            return Err(SyncError::LoggerExited);
        }
        let rx = self.rx.expect("ticket has a receiver unless dead");
        match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(RecvTimeoutError::Disconnected) => Err(SyncError::LoggerDied),
            Err(RecvTimeoutError::Timeout) => Err(SyncError::Timeout(timeout)),
        }
    }
}

/// Lifetime counters, shared with the sync thread.
#[derive(Default)]
struct Stats {
    batches: AtomicU64,
    records: AtomicU64,
    /// Sync attempts that failed and were retried.
    sync_retries: AtomicU64,
    /// Times read-only degraded mode was entered (ENOSPC).
    enospc_entries: AtomicU64,
}

/// The group-commit front of a durable command log: concurrent
/// committers enqueue; a dedicated sync thread batches, appends, and
/// fsyncs once per batch. See the module docs for the acknowledgement
/// disciplines.
///
/// Dropping the committer closes the channel; the sync thread drains the
/// queue, performs a final fsync, and exits — so the on-disk log is
/// complete when drop returns.
pub struct GroupCommitter {
    tx: Option<Sender<Msg>>,
    dead: Arc<AtomicBool>,
    read_only: Arc<AtomicBool>,
    stats: Arc<Stats>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl GroupCommitter {
    /// Spawns the sync thread over `backend`. `observer` (if any) is
    /// invoked after every successful non-empty batch.
    pub fn start(
        backend: Box<dyn LogBackend>,
        config: GroupCommitConfig,
        observer: Option<BatchObserver>,
    ) -> Self {
        Self::start_with(backend, config, observer, None)
    }

    /// [`GroupCommitter::start`] with an additional read-only-mode
    /// transition observer (see [`ReadOnlyObserver`]).
    pub fn start_with(
        backend: Box<dyn LogBackend>,
        config: GroupCommitConfig,
        observer: Option<BatchObserver>,
        read_only_observer: Option<ReadOnlyObserver>,
    ) -> Self {
        let (tx, rx) = unbounded::<Msg>();
        let dead = Arc::new(AtomicBool::new(false));
        let read_only = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Stats::default());
        let thread_dead = dead.clone();
        let thread_read_only = read_only.clone();
        let thread_stats = stats.clone();
        let handle = std::thread::Builder::new()
            .name("calc-group-commit".into())
            .spawn(move || {
                sync_loop(
                    backend,
                    config,
                    observer,
                    read_only_observer,
                    rx,
                    thread_dead,
                    thread_read_only,
                    thread_stats,
                )
            })
            .expect("spawn group-commit sync thread");
        GroupCommitter {
            tx: Some(tx),
            dead,
            read_only,
            stats,
            handle: Some(handle),
        }
    }

    fn tx(&self) -> &Sender<Msg> {
        self.tx.as_ref().expect("sender present until drop")
    }

    /// Enqueues a commit fire-and-forget (ack-before-fsync): the record
    /// becomes durable with its batch, but nothing waits for it.
    pub fn submit(&self, rec: CommitRecord) {
        let _ = self.tx().send(Msg::Commit { rec, ack: None });
    }

    /// Enqueues a commit and returns a ticket whose `wait` blocks until
    /// the record's batch has been fsynced (ack-after-fsync). The enqueue
    /// itself never blocks on the disk, so callers can hold a
    /// seq-assignment lock across it and wait on the ticket after
    /// releasing the lock.
    pub fn submit_durable(&self, rec: CommitRecord) -> DurabilityTicket {
        if self.dead.load(Ordering::Acquire) {
            return DurabilityTicket::dead();
        }
        let (ack_tx, ack_rx) = bounded(1);
        if self
            .tx()
            .send(Msg::Commit {
                rec,
                ack: Some(ack_tx),
            })
            .is_err()
        {
            return DurabilityTicket::dead();
        }
        DurabilityTicket {
            rx: Some(ack_rx),
            dead: false,
        }
    }

    /// Requests an immediate batch close + fsync; the ticket resolves
    /// when everything enqueued before this call is durable.
    pub fn flush(&self) -> DurabilityTicket {
        if self.dead.load(Ordering::Acquire) {
            return DurabilityTicket::dead();
        }
        let (ack_tx, ack_rx) = bounded(1);
        if self.tx().send(Msg::Flush(ack_tx)).is_err() {
            return DurabilityTicket::dead();
        }
        DurabilityTicket {
            rx: Some(ack_rx),
            dead: false,
        }
    }

    /// Whether the sync thread has died on an I/O error (persistence has
    /// stopped; submissions fail fast with [`SyncError`]).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Whether the committer is in read-only degraded mode: the command
    /// log hit ENOSPC and the sync thread is retrying inside its heal
    /// window. Callers should shed new writes and free disk space; the
    /// mode clears itself once a sync succeeds.
    pub fn read_only(&self) -> bool {
        self.read_only.load(Ordering::Acquire)
    }

    /// Failed sync attempts that were retried, lifetime total.
    pub fn sync_retries(&self) -> u64 {
        self.stats.sync_retries.load(Ordering::Relaxed)
    }

    /// Times read-only degraded mode was entered, lifetime total.
    pub fn enospc_entries(&self) -> u64 {
        self.stats.enospc_entries.load(Ordering::Relaxed)
    }

    /// Successful batches fsynced so far.
    pub fn batches(&self) -> u64 {
        self.stats.batches.load(Ordering::Relaxed)
    }

    /// Records made durable across all batches.
    pub fn records(&self) -> u64 {
        self.stats.records.load(Ordering::Relaxed)
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        // Close the channel: the sync thread drains the remaining queue,
        // fsyncs, and exits.
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for GroupCommitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GroupCommitter(batches={}, records={}, dead={})",
            self.batches(),
            self.records(),
            self.is_dead()
        )
    }
}

/// ENOSPC, the one `io::Error` that self-heals when an operator (or an
/// emergency retention pass) frees disk space.
fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(28)
}

/// Syncs the backend, retrying per the module-level error discipline:
/// transient errors up to `config.sync_retries` attempts with seeded
/// backoff; ENOSPC for up to `config.enospc_window` wall time with the
/// read-only flag raised in between. Returns the final error only once
/// retries are exhausted — the caller then applies the fatal path.
fn sync_with_retry(
    backend: &mut dyn LogBackend,
    config: &GroupCommitConfig,
    read_only: &AtomicBool,
    read_only_observer: &Option<ReadOnlyObserver>,
    stats: &Stats,
) -> io::Result<()> {
    let mut backoff = Backoff::new(config.retry_base, config.retry_cap, config.retry_seed);
    let mut transient_attempts = 0u32;
    let mut enospc_since: Option<Instant> = None;
    loop {
        match backend.sync() {
            Ok(()) => {
                if read_only.swap(false, Ordering::AcqRel) {
                    if let Some(obs) = read_only_observer {
                        obs(false);
                    }
                }
                return Ok(());
            }
            Err(e) if is_enospc(&e) => {
                if !read_only.swap(true, Ordering::AcqRel) {
                    stats.enospc_entries.fetch_add(1, Ordering::Relaxed);
                    if let Some(obs) = read_only_observer {
                        obs(true);
                    }
                }
                let since = *enospc_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= config.enospc_window {
                    return Err(e);
                }
                stats.sync_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff.next_delay());
            }
            Err(e) => {
                if transient_attempts >= config.sync_retries {
                    return Err(e);
                }
                transient_attempts += 1;
                stats.sync_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff.next_delay());
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn sync_loop(
    mut backend: Box<dyn LogBackend>,
    config: GroupCommitConfig,
    observer: Option<BatchObserver>,
    read_only_observer: Option<ReadOnlyObserver>,
    rx: Receiver<Msg>,
    dead: Arc<AtomicBool>,
    read_only: Arc<AtomicBool>,
    stats: Arc<Stats>,
) {
    let max_batch = config.max_batch.max(1);
    loop {
        // Block for the batch opener; a disconnect here means a clean
        // shutdown with nothing pending (every prior batch was synced).
        let Ok(first) = rx.recv() else {
            return;
        };
        let deadline = Instant::now() + config.window;
        let mut acks: Vec<AckSender> = Vec::new();
        let mut appended = 0usize;
        let mut failure: Option<io::Error> = None;
        let mut disconnected = false;
        let mut next = Some(first);
        // Collect until the deadline, the batch cap, or an explicit
        // flush — appending as messages arrive so the fsync at the end
        // covers the whole batch.
        loop {
            match next.take() {
                Some(Msg::Commit { rec, ack }) => {
                    if failure.is_none() {
                        match backend.append(&rec) {
                            Ok(()) => appended += 1,
                            Err(e) => failure = Some(e),
                        }
                    }
                    if let Some(a) = ack {
                        acks.push(a);
                    }
                    if appended >= max_batch || failure.is_some() {
                        break;
                    }
                }
                Some(Msg::Flush(a)) => {
                    acks.push(a);
                    break;
                }
                None => {}
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(msg) => next = Some(msg),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }

        let fsync_started = Instant::now();
        if failure.is_none() {
            if let Err(e) = sync_with_retry(
                backend.as_mut(),
                &config,
                &read_only,
                &read_only_observer,
                &stats,
            ) {
                failure = Some(e);
            }
        } else if let Some(e) = &failure {
            // Append failures are fatal regardless (see module docs), but
            // an ENOSPC append still raises the read-only flag so the
            // operator-facing story (free space, shed writes) is the same.
            if is_enospc(e) && !read_only.swap(true, Ordering::AcqRel) {
                stats.enospc_entries.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &read_only_observer {
                    obs(true);
                }
            }
        }
        match failure {
            None => {
                let fsync_latency = fsync_started.elapsed();
                // Stats and the observer run before the acks, so a waiter
                // that saw its acknowledgement also sees its batch counted.
                if appended > 0 {
                    stats.batches.fetch_add(1, Ordering::Relaxed);
                    stats.records.fetch_add(appended as u64, Ordering::Relaxed);
                    if let Some(obs) = &observer {
                        obs(appended, fsync_latency);
                    }
                }
                for ack in acks {
                    let _ = ack.send(Ok(()));
                }
                if disconnected {
                    return;
                }
            }
            Some(_) => {
                // The log is broken: stop persisting, fail this batch's
                // waiters, then keep draining until shutdown closes the
                // channel so queued and future tickets observe a dead
                // logger immediately instead of wedging until timeout.
                dead.store(true, Ordering::Release);
                for ack in acks {
                    let _ = ack.send(Err(SyncError::LoggerDied));
                }
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Commit { ack: Some(a), .. } | Msg::Flush(a) => {
                            let _ = a.send(Err(SyncError::LoggerDied));
                        }
                        Msg::Commit { ack: None, .. } => {}
                    }
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    use calc_common::simfs::{SimVfs, TransientKind, TransientSpec};
    use calc_common::types::{CommitSeq, TxnId};
    use calc_txn::proc::ProcId;

    use crate::logfile::read_dir_logs;

    fn rec(seq: u64) -> CommitRecord {
        CommitRecord {
            seq: CommitSeq(seq),
            txn: TxnId(seq),
            proc: ProcId(1),
            params: std::sync::Arc::from(seq.to_le_bytes().to_vec().into_boxed_slice()),
        }
    }

    fn seg_backend(vfs: &SimVfs, dir: &str) -> Box<dyn LogBackend> {
        Box::new(
            SegmentedLogWriter::create(
                std::sync::Arc::new(vfs.clone()),
                &PathBuf::from(dir),
                1 << 20,
            )
            .unwrap(),
        )
    }

    /// The tentpole invariant: N concurrent committers under a window
    /// wide enough to cover all their submissions produce exactly ONE
    /// fsync — counted through the fault-injecting filesystem, not
    /// inferred from timing.
    #[test]
    fn n_concurrent_committers_one_fsync() {
        const N: usize = 16;
        let vfs = SimVfs::new(0x6C0_1111);
        let backend = seg_backend(&vfs, "/gc/one-fsync");
        let baseline = vfs.counts().fsyncs; // segment creation fsyncs
        let gc = std::sync::Arc::new(GroupCommitter::start(
            backend,
            GroupCommitConfig {
                window: Duration::from_secs(5),
                max_batch: 1 << 20,
                ..Default::default()
            },
            None,
        ));
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(N));
        let waits: Vec<_> = (0..N)
            .map(|i| {
                let gc = gc.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    gc.submit_durable(rec(i as u64 + 1))
                        .wait(Duration::from_secs(30))
                })
            })
            .collect();
        for w in waits {
            w.join().unwrap().expect("batch fsync acknowledged");
        }
        assert_eq!(
            vfs.counts().fsyncs - baseline,
            1,
            "N committers under a wide window must share exactly one fsync"
        );
        assert_eq!(gc.batches(), 1);
        assert_eq!(gc.records(), N as u64);
        assert_eq!(vfs.fsyncs_dropped(), 0, "the one fsync must be honest");
        drop(std::sync::Arc::try_unwrap(gc).expect("sole owner"));
        let recovered = read_dir_logs(&vfs, &PathBuf::from("/gc/one-fsync")).unwrap();
        assert_eq!(recovered.len(), N, "every batched record durable");
    }

    /// max_batch = 1 degenerates to per-commit fsync — the baseline the
    /// server benchmark compares against.
    #[test]
    fn max_batch_one_fsyncs_per_commit() {
        let vfs = SimVfs::new(0x6C0_2222);
        let backend = seg_backend(&vfs, "/gc/per-commit");
        let baseline = vfs.counts().fsyncs;
        let gc = GroupCommitter::start(
            backend,
            GroupCommitConfig {
                window: Duration::from_millis(50),
                max_batch: 1,
                ..Default::default()
            },
            None,
        );
        for i in 1..=5u64 {
            gc.submit_durable(rec(i))
                .wait(Duration::from_secs(30))
                .unwrap();
        }
        assert_eq!(gc.batches(), 5);
        assert!(
            vfs.counts().fsyncs - baseline >= 5,
            "per-commit mode must fsync each commit"
        );
    }

    /// Dead-sync-thread regression: after an append I/O error every
    /// waiter — batched, queued, and future — gets the typed
    /// `SyncError::LoggerDied`/`LoggerExited`, and nothing wedges.
    #[test]
    fn dead_sync_thread_fails_all_waiters_typed() {
        let vfs = SimVfs::new(0x6C0_3333);
        let backend = seg_backend(&vfs, "/gc/dead");
        // Every data write from here on fails: the first batch kills the
        // sync thread.
        vfs.arm_transient(TransientSpec {
            kind: TransientKind::WriteError,
            from: vfs.counts().data_ops(),
            count: u64::MAX,
        });
        let gc = std::sync::Arc::new(GroupCommitter::start(
            backend,
            GroupCommitConfig {
                window: Duration::from_millis(20),
                max_batch: 1 << 20,
                ..Default::default()
            },
            None,
        ));
        let waits: Vec<_> = (0..8u64)
            .map(|i| {
                let gc = gc.clone();
                std::thread::spawn(move || {
                    gc.submit_durable(rec(i + 1)).wait(Duration::from_secs(30))
                })
            })
            .collect();
        for w in waits {
            let r = w.join().unwrap();
            assert!(
                matches!(r, Err(SyncError::LoggerDied) | Err(SyncError::LoggerExited)),
                "waiter must observe a typed logger death, got {r:?}"
            );
        }
        // The dead flag is published; later submissions fail fast.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !gc.is_dead() {
            assert!(Instant::now() < deadline, "dead flag never published");
            std::thread::sleep(Duration::from_millis(1));
        }
        let r = gc.submit_durable(rec(99)).wait(Duration::from_secs(5));
        assert!(matches!(
            r,
            Err(SyncError::LoggerExited) | Err(SyncError::LoggerDied)
        ));
        let r = gc.flush().wait(Duration::from_secs(5));
        assert!(matches!(
            r,
            Err(SyncError::LoggerExited) | Err(SyncError::LoggerDied)
        ));
        assert_eq!(gc.records(), 0, "no record may be counted durable");
    }

    /// The flush handshake closes the window early: everything enqueued
    /// before the flush is durable when the ticket resolves, without
    /// waiting out the deadline.
    #[test]
    fn flush_closes_batch_early_and_is_durable() {
        let vfs = SimVfs::new(0x6C0_4444);
        let backend = seg_backend(&vfs, "/gc/flush");
        let gc = GroupCommitter::start(
            backend,
            GroupCommitConfig {
                window: Duration::from_secs(60),
                max_batch: 1 << 20,
                ..Default::default()
            },
            None,
        );
        for i in 1..=10u64 {
            gc.submit(rec(i));
        }
        let start = Instant::now();
        gc.flush().wait(Duration::from_secs(30)).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "flush must not wait out the 60s window"
        );
        let recovered = read_dir_logs(&vfs, &PathBuf::from("/gc/flush")).unwrap();
        assert_eq!(recovered.len(), 10, "flushed records must be on disk");
    }

    /// The observer sees every non-empty batch with its record count —
    /// the engine's avg_batch_size/fsync_p99 metrics ride on this.
    #[test]
    fn observer_reports_batch_sizes() {
        let vfs = SimVfs::new(0x6C0_5555);
        let backend = seg_backend(&vfs, "/gc/observer");
        let seen = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let gc = GroupCommitter::start(
            backend,
            GroupCommitConfig {
                window: Duration::from_secs(5),
                max_batch: 1 << 20,
                ..Default::default()
            },
            Some(Box::new(move |records, latency| {
                seen2.lock().push((records, latency));
            })),
        );
        for i in 1..=7u64 {
            gc.submit(rec(i));
        }
        gc.flush().wait(Duration::from_secs(30)).unwrap();
        let batches = seen.lock().clone();
        assert_eq!(batches.iter().map(|(n, _)| n).sum::<usize>(), 7);
        assert!(!batches.is_empty());
    }

    /// A backend whose `sync` outcome is scripted per attempt. SimVfs
    /// transients only cover data ops (writes/creates), never fsyncs, so
    /// sync-retry behaviour needs its own harness.
    struct ScriptedSyncBackend {
        inner: Box<dyn LogBackend>,
        /// Returns `Some(err)` to fail this sync attempt, `None` to let
        /// it through. Called once per attempt, in order.
        script: Box<dyn FnMut(u64) -> Option<io::Error> + Send>,
        attempts: std::sync::Arc<AtomicU64>,
    }

    impl LogBackend for ScriptedSyncBackend {
        fn append(&mut self, rec: &CommitRecord) -> io::Result<()> {
            self.inner.append(rec)
        }
        fn sync(&mut self) -> io::Result<()> {
            let n = self.attempts.fetch_add(1, Ordering::Relaxed);
            if let Some(e) = (self.script)(n) {
                return Err(e);
            }
            self.inner.sync()
        }
    }

    fn fast_retry_config() -> GroupCommitConfig {
        GroupCommitConfig {
            window: Duration::from_millis(5),
            max_batch: 1 << 20,
            sync_retries: 3,
            retry_base: Duration::from_millis(1),
            retry_cap: Duration::from_millis(4),
            retry_seed: 0x6C0_7777,
            enospc_window: Duration::from_secs(2),
        }
    }

    /// Graceful-degradation regression: a transient sync-error window
    /// (two failing fsync attempts, then healed) must not kill the
    /// committer or fail any durable ticket — the waiter just sees a
    /// slightly slower acknowledgement.
    #[test]
    fn transient_sync_window_heals_without_killing_committer() {
        let vfs = SimVfs::new(0x6C0_6666);
        let attempts = std::sync::Arc::new(AtomicU64::new(0));
        let backend = Box::new(ScriptedSyncBackend {
            inner: seg_backend(&vfs, "/gc/heal"),
            script: Box::new(|n| {
                (n < 2).then(|| io::Error::new(io::ErrorKind::Interrupted, "injected sync error"))
            }),
            attempts: attempts.clone(),
        });
        let gc = GroupCommitter::start(backend, fast_retry_config(), None);
        gc.submit_durable(rec(1))
            .wait(Duration::from_secs(30))
            .expect("ticket must resolve Ok through the healed window");
        assert!(!gc.is_dead(), "a healed sync window must not kill the committer");
        assert!(!gc.read_only(), "non-ENOSPC errors never enter read-only mode");
        assert!(gc.sync_retries() >= 2, "both failed attempts counted as retries");
        assert_eq!(gc.records(), 1);
        // The committer keeps working normally afterwards.
        gc.submit_durable(rec(2))
            .wait(Duration::from_secs(30))
            .unwrap();
        drop(gc);
        let recovered = read_dir_logs(&vfs, &PathBuf::from("/gc/heal")).unwrap();
        assert_eq!(recovered.len(), 2, "every acknowledged record durable");
    }

    /// A *persistent* sync failure still yields the typed logger death —
    /// fast (bounded by sync_retries × retry_cap), not after wedging.
    #[test]
    fn persistent_sync_failure_dies_fast_and_typed() {
        let vfs = SimVfs::new(0x6C0_8888);
        let attempts = std::sync::Arc::new(AtomicU64::new(0));
        let backend = Box::new(ScriptedSyncBackend {
            inner: seg_backend(&vfs, "/gc/persistent"),
            script: Box::new(|_| {
                Some(io::Error::other("disk is gone"))
            }),
            attempts: attempts.clone(),
        });
        let gc = GroupCommitter::start(backend, fast_retry_config(), None);
        let started = Instant::now();
        let r = gc.submit_durable(rec(1)).wait(Duration::from_secs(30));
        assert!(
            matches!(r, Err(SyncError::LoggerDied) | Err(SyncError::LoggerExited)),
            "persistent sync failure must surface the typed death, got {r:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "retries are bounded: death must be fast, took {:?}",
            started.elapsed()
        );
        // 1 initial + sync_retries attempts, then gave up.
        assert_eq!(attempts.load(Ordering::Relaxed), 4);
        assert_eq!(gc.sync_retries(), 3);
        assert_eq!(gc.records(), 0, "no record may be counted durable");
    }

    /// ENOSPC self-heal: while the disk is "full" the committer sits in
    /// read-only degraded mode (observer fired `true`); once space frees
    /// inside the window, the sync succeeds, the mode clears (observer
    /// fired `false`), and the pending durable ticket resolves Ok — zero
    /// acknowledged-write loss.
    #[test]
    fn enospc_enters_read_only_and_self_heals() {
        let vfs = SimVfs::new(0x6C0_9999);
        let full = std::sync::Arc::new(AtomicBool::new(true));
        let full2 = full.clone();
        let attempts = std::sync::Arc::new(AtomicU64::new(0));
        let backend = Box::new(ScriptedSyncBackend {
            inner: seg_backend(&vfs, "/gc/enospc"),
            script: Box::new(move |_| {
                full2
                    .load(Ordering::Acquire)
                    .then(|| io::Error::from_raw_os_error(28))
            }),
            attempts: attempts.clone(),
        });
        let transitions = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let transitions2 = transitions.clone();
        let gc = std::sync::Arc::new(GroupCommitter::start_with(
            backend,
            fast_retry_config(),
            None,
            Some(Box::new(move |entering| {
                transitions2.lock().push(entering);
            })),
        ));
        let waiter = {
            let gc = gc.clone();
            std::thread::spawn(move || gc.submit_durable(rec(1)).wait(Duration::from_secs(30)))
        };
        // The committer must publish read-only mode while the disk is full.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !gc.read_only() {
            assert!(Instant::now() < deadline, "read-only mode never published");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!gc.is_dead(), "inside the ENOSPC window the committer lives");
        // "Free disk space": the next retry succeeds and heals the mode.
        full.store(false, Ordering::Release);
        waiter
            .join()
            .unwrap()
            .expect("durable ticket resolves Ok after the heal — no lost ack");
        assert!(!gc.read_only(), "healed sync must clear read-only mode");
        assert!(!gc.is_dead());
        assert_eq!(gc.enospc_entries(), 1);
        assert_eq!(
            transitions.lock().clone(),
            vec![true, false],
            "observer sees exactly one enter/heal pair"
        );
        drop(std::sync::Arc::try_unwrap(gc).unwrap_or_else(|_| panic!("sole owner")));
        let recovered = read_dir_logs(&vfs, &PathBuf::from("/gc/enospc")).unwrap();
        assert_eq!(recovered.len(), 1, "the acknowledged record is on disk");
    }
}
