//! End-to-end tests over real TCP: wire verbs, admin metrics, protocol
//! robustness, and the graceful-shutdown durability guarantee.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use calc_server::{key_of, Client, KvError, Server};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "calc-server-test-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn start_server(dir: &std::path::Path) -> Server {
    let db = calc_server::open_or_recover(dir, |config| {
        config.workers = 2;
        config.group_commit_window = Duration::from_micros(500);
    })
    .unwrap();
    Server::start(Arc::new(db), "127.0.0.1:0").unwrap()
}

#[test]
fn wire_verbs_roundtrip() {
    let dir = temp_dir("verbs");
    let server = start_server(&dir);
    let mut c = Client::connect(server.local_addr()).unwrap();

    // PUT → GET → DEL → GET.
    let k = key_of("greeting");
    assert!(c.get(k).unwrap().is_none());
    let seq1 = c.put(k, b"hello").unwrap();
    assert_eq!(c.get(k).unwrap().as_deref(), Some(&b"hello"[..]));
    let seq2 = c.put(k, b"world").unwrap();
    assert!(seq2 > seq1, "commit sequences advance");
    c.del(k).unwrap();
    assert!(c.get(k).unwrap().is_none());
    // Deleting an absent key aborts, typed.
    match c.del(k) {
        Err(KvError::Aborted(reason)) => assert!(reason.contains("no such key")),
        other => panic!("expected abort, got {other:?}"),
    }

    // CAS: insert, conflict, swap, stale.
    let k = key_of("counter");
    c.cas(k, None, b"one").unwrap();
    assert!(matches!(c.cas(k, None, b"two"), Err(KvError::Aborted(_))));
    c.cas(k, Some(b"one"), b"two").unwrap();
    assert!(matches!(
        c.cas(k, Some(b"one"), b"three"),
        Err(KvError::Aborted(_))
    ));
    assert_eq!(c.get(k).unwrap().as_deref(), Some(&b"two"[..]));

    // MPUT commits all pairs under one seq; MGET reads them back aligned.
    let pairs: Vec<(u64, Vec<u8>)> =
        (0..5u64).map(|i| (1000 + i, i.to_le_bytes().to_vec())).collect();
    c.mput(&pairs).unwrap();
    let keys: Vec<u64> = (0..6u64).map(|i| 1000 + i).collect();
    let got = c.mget(&keys).unwrap();
    for (i, v) in got.iter().enumerate().take(5) {
        assert_eq!(v.as_deref(), Some(&(i as u64).to_le_bytes()[..]));
    }
    assert!(got[5].is_none(), "unwritten key reads absent");

    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
}

#[test]
fn admin_verbs_expose_group_commit_metrics_and_checkpoints() {
    let dir = temp_dir("admin");
    let server = start_server(&dir);
    let mut c = Client::connect(server.local_addr()).unwrap();
    for i in 0..20u64 {
        c.put(i, &i.to_le_bytes()).unwrap();
    }

    let fields = c.health_fields().unwrap();
    assert_eq!(fields["committed"], "20");
    assert_eq!(fields["records"], "20");
    // Durable acks mean every commit rode a fsynced batch.
    let batches: u64 = fields["commit_batches"].parse().unwrap();
    assert!(batches >= 1, "at least one group-commit batch: {fields:?}");
    let batch_records: u64 = fields["commit_batch_records"].parse().unwrap();
    assert_eq!(batch_records, 20, "every commit counted in a batch");
    let avg: f64 = fields["avg_batch_size"].parse().unwrap();
    assert!(avg >= 1.0);
    let p99: u64 = fields["fsync_p99_us"].parse().unwrap();
    assert!(p99 > 0, "a real fsync takes measurable time");
    assert_eq!(fields["active_connections"], "1", "just this client");
    let total: u64 = fields["total_connections"].parse().unwrap();
    assert!(total >= 1);
    assert_eq!(fields["degraded"], "false");

    // A second connection is visible while open.
    let mut c2 = Client::connect(server.local_addr()).unwrap();
    let fields = c2.health_fields().unwrap();
    assert_eq!(fields["active_connections"], "2");
    drop(c2);

    // CHECKPOINT triggers a cycle; STATS shows the published chain.
    let line = c.checkpoint().unwrap();
    assert!(line.contains("records=20"), "checkpoint stats line: {line}");
    let stats = c.stats().unwrap();
    assert!(stats.contains("checkpoint kind="), "stats: {stats}");

    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
}

#[test]
fn health_exposes_executor_routing_counters() {
    let dir = temp_dir("exec-health");
    let db = calc_server::open_or_recover(&dir, |config| {
        config.workers = 2;
        config.executor_mode = calc_server::ExecutorMode::ShardOwned;
        config.group_commit_window = Duration::from_micros(500);
    })
    .unwrap();
    let server = Server::start(Arc::new(db), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    for i in 0..10u64 {
        c.put(i, &i.to_le_bytes()).unwrap();
    }
    // MPUT over several keys exercises the cross-shard path.
    let pairs: Vec<(u64, Vec<u8>)> = (0..8u64).map(|i| (i * 31, vec![1])).collect();
    c.mput(&pairs).unwrap();

    let fields = c.health_fields().unwrap();
    assert_eq!(fields["executor_mode"], "shard_owned");
    let single: u64 = fields["single_shard_txns"].parse().unwrap();
    assert!(single >= 10, "single-key puts counted: {fields:?}");
    let cross: u64 = fields["cross_shard_txns"].parse().unwrap();
    assert!(cross >= 1, "mput spans owners: {fields:?}");
    assert_eq!(fields["routing_fallbacks"], "0");
    assert!(
        fields.contains_key("worker_queue_depth_0")
            && fields.contains_key("worker_queue_depth_1"),
        "per-worker depth gauges exposed: {fields:?}"
    );

    // The pool executor reports its mode and no per-worker gauges.
    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
    let dir = temp_dir("exec-health-pool");
    let db = calc_server::open_or_recover(&dir, |config| {
        config.workers = 2;
        config.executor_mode = calc_server::ExecutorMode::Pool;
    })
    .unwrap();
    let server = Server::start(Arc::new(db), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let fields = c.health_fields().unwrap();
    assert_eq!(fields["executor_mode"], "pool");
    assert!(!fields.contains_key("worker_queue_depth_0"));
    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
}

#[test]
fn malformed_requests_get_bad_request_and_connection_survives() {
    use calc_server::protocol::{read_frame, status, write_frame};
    use std::net::TcpStream;

    let dir = temp_dir("badreq");
    let server = start_server(&dir);
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut r = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut w = std::io::BufWriter::new(stream);

    // Unknown verb.
    write_frame(&mut w, 0x7f, &[]).unwrap();
    let (st, _) = read_frame(&mut r).unwrap().unwrap();
    assert_eq!(st, status::BAD_REQUEST);
    // Truncated GET payload.
    write_frame(&mut w, calc_server::protocol::verb::GET, &[1, 2]).unwrap();
    let (st, _) = read_frame(&mut r).unwrap().unwrap();
    assert_eq!(st, status::BAD_REQUEST);
    // The connection is still serviceable after both.
    write_frame(
        &mut w,
        calc_server::protocol::verb::GET,
        &7u64.to_le_bytes(),
    )
    .unwrap();
    let (st, body) = read_frame(&mut r).unwrap().unwrap();
    assert_eq!(st, status::OK);
    assert_eq!(body, vec![0u8], "absent key");

    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
}

/// The graceful-shutdown contract: shutting down under concurrent write
/// load loses NO acknowledged write. Mirrors the engine's
/// `shutdown_under_load_drains_and_completes`, but through the server and
/// with recovery as the oracle.
#[test]
fn shutdown_under_load_loses_no_acknowledged_write() {
    const WRITERS: usize = 8;
    let dir = temp_dir("shutdown-load");
    let server = start_server(&dir);
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let key = 0xA000 + w as u64;
                let mut c = Client::connect(addr).unwrap();
                let mut last_acked = 0u64;
                let mut counter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    counter += 1;
                    match c.put(key, &counter.to_le_bytes()) {
                        Ok(_) => last_acked = counter,
                        // Shutdown raced the request: the unacked write
                        // carries no durability promise. Stop writing.
                        Err(KvError::Io(_)) => break,
                        Err(e) => panic!("writer {w}: {e}"),
                    }
                }
                (key, last_acked)
            })
        })
        .collect();

    // Let the writers build real traffic, then pull the plug mid-stream.
    std::thread::sleep(Duration::from_millis(300));
    let db = server.shutdown();
    stop.store(true, Ordering::Relaxed);
    let acked: Vec<(u64, u64)> = writers.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        acked.iter().all(|(_, n)| *n > 0),
        "every writer got at least one ack: {acked:?}"
    );
    Arc::try_unwrap(db).unwrap().shutdown();

    // Recovery is the oracle: every acknowledged write must be there.
    // Counters only grow, so "recovered >= last acked" proves no acked
    // write was dropped (a later unacked write may also have landed).
    let recovered = calc_server::open_or_recover(&dir, |c| {
        c.workers = 2;
    })
    .unwrap();
    for (key, last_acked) in acked {
        let v = recovered
            .get(calc_common::types::Key(key))
            .unwrap_or_else(|| panic!("key {key:#x} lost after shutdown"));
        let got = u64::from_le_bytes(v[..8].try_into().unwrap());
        assert!(
            got >= last_acked,
            "key {key:#x}: recovered {got} < acknowledged {last_acked}"
        );
    }
    recovered.shutdown();
}
