//! Overload and chaos: the tentpole's end-to-end verification.
//!
//! Three attack surfaces, one invariant — **no acknowledged write is ever
//! lost**, no matter how hard the server sheds:
//!
//! * an overload sweep well past saturation with a tiny in-flight permit
//!   gate and a concurrent checkpoint: `BUSY` sheds must happen, and every
//!   `OK`-acked write must survive shutdown + recovery;
//! * a connection cap that holds under excess connects (typed `BUSY`,
//!   never a silent hang) and releases as connections close;
//! * a seeded fault-injecting TCP proxy (partial frames, mid-request
//!   stalls, surprise disconnects) between client and server.
//!
//! Every random choice is seeded (`CHAOS_SEED` overrides) so CI failures
//! replay deterministically.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use calc_common::rng::SplitMix;
use calc_server::protocol::{read_frame, status};
use calc_server::{Client, ClientConfig, KvError, Server, ServerConfig};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "calc-chaos-test-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn chaos_seed(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn open_db(dir: &std::path::Path) -> calc_engine::Database {
    calc_server::open_or_recover(dir, |c| {
        c.workers = 2;
        c.group_commit_window = Duration::from_micros(500);
    })
    .unwrap()
}

/// Overload sweep: 12 writer connections hammering a server whose permit
/// gate admits 2 requests at a time with a 1ms queue deadline — far past
/// saturation — while another connection drives checkpoints. Writers
/// retry `BUSY` (safe: pre-execution shed) until acked. Afterwards the
/// engine is shut down and recovered: every acked key must be there with
/// its exact value, and the health counters must show real shedding.
#[test]
fn overload_sweep_sheds_but_never_loses_acked_writes() {
    let dir = temp_dir("sweep");
    let server = Server::start_with(
        Arc::new(open_db(&dir)),
        "127.0.0.1:0",
        ServerConfig {
            max_inflight: 2,
            queue_deadline: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    const WRITERS: u64 = 12;
    const OPS: u64 = 40;
    let busy_seen = Arc::new(AtomicU64::new(0));
    let stop_ckpt = Arc::new(AtomicBool::new(false));

    // Concurrent checkpoint pressure: CHECKPOINT bypasses the gate.
    let ckpt = {
        let stop = stop_ckpt.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            while !stop.load(Ordering::Relaxed) {
                c.checkpoint().unwrap();
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let busy_seen = busy_seen.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut acked = Vec::new();
                for i in 0..OPS {
                    let key = 0x0A00_0000 + w * 10_000 + i;
                    let value = (w << 32 | i).to_le_bytes();
                    loop {
                        match c.put(key, &value) {
                            Ok(_seq) => {
                                acked.push((key, value.to_vec()));
                                break;
                            }
                            Err(KvError::Busy(_)) => {
                                busy_seen.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(500));
                            }
                            Err(e) => panic!("writer {w} op {i}: unexpected {e}"),
                        }
                    }
                }
                acked
            })
        })
        .collect();

    let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
    for h in writers {
        acked.extend(h.join().unwrap());
    }
    stop_ckpt.store(true, Ordering::Relaxed);
    ckpt.join().unwrap();
    assert_eq!(acked.len() as u64, WRITERS * OPS);

    // The gate really shed: both client-observed BUSYs and the server's
    // own counter agree. (2 permits / 1ms deadline / 12 writers — if this
    // never sheds, admission control is not wired in.)
    let mut c = Client::connect(addr).unwrap();
    let fields = c.health_fields().unwrap();
    let shed: u64 = fields["shed_requests"].parse().unwrap();
    assert!(shed > 0, "no server-side sheds recorded: {fields:?}");
    assert!(
        busy_seen.load(Ordering::Relaxed) > 0,
        "clients never saw BUSY"
    );
    assert_eq!(fields["inflight"], "0");
    drop(c);

    // Zero acked-write loss: recover from disk and read every acked key.
    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
    let server = Server::start(Arc::new(open_db(&dir)), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    for (key, value) in &acked {
        assert_eq!(
            c.get(*key).unwrap().as_deref(),
            Some(value.as_slice()),
            "acked write to key {key:#x} lost across recovery"
        );
    }
    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
}

/// The `--max-connections` cap: excess connects get one typed `BUSY`
/// frame and a close (never a hang), the shed is counted, and closing a
/// live connection frees the slot for the next connect.
#[test]
fn connection_cap_holds_and_releases() {
    let dir = temp_dir("conncap");
    let server = Server::start_with(
        Arc::new(open_db(&dir)),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    assert!(a.get(1).unwrap().is_none());
    assert!(b.get(1).unwrap().is_none());

    // Third connect: accepted at TCP level, then immediately told BUSY
    // and dropped.
    let mut excess = TcpStream::connect(addr).unwrap();
    excess
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut r = std::io::BufReader::new(excess.try_clone().unwrap());
    let (st, msg) = read_frame(&mut r).unwrap().expect("a typed reject frame");
    assert_eq!(st, status::BUSY);
    assert_eq!(msg, b"connection limit reached");
    let mut sink = [0u8; 8];
    assert!(
        matches!(excess.read(&mut sink), Ok(0) | Err(_)),
        "rejected connection must be closed"
    );

    let fields = a.health_fields().unwrap();
    assert!(fields["shed_connections"].parse::<u64>().unwrap() >= 1);

    // Release: close one admitted connection; the slot frees up (the
    // handler needs a moment to observe the close, hence the retry loop).
    drop(b);
    let mut admitted = None;
    for _ in 0..100 {
        let mut c = Client::connect(addr).unwrap();
        match c.get(1) {
            Ok(v) => {
                assert!(v.is_none());
                admitted = Some(c);
                break;
            }
            Err(KvError::Busy(_)) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("unexpected error while waiting for a slot: {e}"),
        }
    }
    assert!(admitted.is_some(), "closed connection never freed its slot");

    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
}

/// A seeded fault-injecting TCP proxy: forwards in small chunks with
/// random stalls, and kills a configurable fraction of connections
/// mid-stream. Returns the proxy's listen address and a stop handle.
fn start_fault_proxy(
    upstream: SocketAddr,
    seed: u64,
) -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut conn_id = 0u64;
            loop {
                let Ok((client_side, _)) = listener.accept() else {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    continue;
                };
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                conn_id += 1;
                let Ok(server_side) = TcpStream::connect(upstream) else {
                    continue;
                };
                // Per-connection seeded fate: every connection is choppy
                // and slow, and dies after a seeded byte budget — a fixed
                // death sentence (not a coin flip) so every seed actually
                // injects disconnects over a long enough run.
                let mut fate = SplitMix::new(seed ^ conn_id.wrapping_mul(0x9E37_79B9));
                let kill_after = 200 + fate.next_below(1200);
                for (mut from, mut to, dir_seed) in [
                    (client_side.try_clone().unwrap(), server_side.try_clone().unwrap(), 1u64),
                    (server_side, client_side, 2u64),
                ] {
                    let mut rng = SplitMix::new(seed ^ conn_id ^ (dir_seed << 32));
                    std::thread::spawn(move || {
                        let mut moved = 0u64;
                        let mut buf = [0u8; 8];
                        loop {
                            // Tiny chunks force partial frames on both sides.
                            let want = 1 + rng.next_below(buf.len() as u64 - 1) as usize;
                            let n = match from.read(&mut buf[..want]) {
                                Ok(0) | Err(_) => break,
                                Ok(n) => n,
                            };
                            if rng.chance(0.10) {
                                // Mid-request stall.
                                std::thread::sleep(Duration::from_millis(rng.next_below(8)));
                            }
                            if to.write_all(&buf[..n]).is_err() {
                                break;
                            }
                            let _ = to.flush();
                            moved += n as u64;
                            if moved >= kill_after {
                                // Surprise disconnect, both directions.
                                let _ = from.shutdown(Shutdown::Both);
                                let _ = to.shutdown(Shutdown::Both);
                                break;
                            }
                        }
                        let _ = to.shutdown(Shutdown::Write);
                    });
                }
            }
        })
    };
    (addr, stop, handle)
}

/// Writes through the fault proxy: connections die mid-request, frames
/// arrive a few bytes at a time, stalls hit between chunks. The client
/// follows the retry matrix — a transport error on a write is AMBIGUOUS,
/// so it reconnects and moves on without resending (never auto-retry a
/// write after an ambiguous failure). The oracle after recovery: every
/// key the client got an `OK` for must be durable. Unacked keys may or
/// may not be — that ambiguity is the point.
#[test]
fn faulty_proxy_partial_frames_never_lose_acked_writes() {
    let dir = temp_dir("proxy");
    let server = Server::start(Arc::new(open_db(&dir)), "127.0.0.1:0").unwrap();
    let (proxy_addr, proxy_stop, proxy_handle) =
        start_fault_proxy(server.local_addr(), chaos_seed(0xFADE_0003));

    let client_config = ClientConfig {
        read_timeout: Some(Duration::from_secs(5)),
        ..ClientConfig::default()
    };
    let connect = |cfg: &ClientConfig| loop {
        match Client::connect_with(proxy_addr, cfg.clone()) {
            Ok(c) => return c,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    };
    let mut c = connect(&client_config);
    let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut transport_failures = 0u64;
    for i in 0..150u64 {
        let key = 0x0B00_0000 + i;
        let value = i.to_le_bytes().to_vec();
        match c.put(key, &value) {
            Ok(_seq) => acked.push((key, value)),
            Err(KvError::Io(_)) => {
                // Ambiguous — do NOT resend this key; fresh connection,
                // next key.
                transport_failures += 1;
                c = connect(&client_config);
            }
            Err(KvError::Busy(_)) => {
                // Pre-execution shed: the one retry that IS safe.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("op {i}: unexpected {e}"),
        }
    }
    assert!(
        !acked.is_empty(),
        "proxy killed every single attempt — seed produced no signal"
    );
    assert!(
        transport_failures > 0,
        "proxy injected no faults — chaos test tested nothing"
    );

    proxy_stop.store(true, Ordering::Relaxed);
    let _ = TcpStream::connect(proxy_addr); // unblock accept
    proxy_handle.join().unwrap();

    // Recovery oracle: acked ⊆ durable.
    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
    let server = Server::start(Arc::new(open_db(&dir)), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    for (key, value) in &acked {
        assert_eq!(
            c.get(*key).unwrap().as_deref(),
            Some(value.as_slice()),
            "acked write to key {key:#x} lost (proxy chaos)"
        );
    }
    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
}
