//! The kill-9 smoke: start the real `calc-server` binary, write through
//! real TCP, SIGKILL it mid-traffic, restart over the same directory,
//! and assert every acknowledged write survived. Tier-6 of
//! `scripts/verify.sh` (`cargo verify-server`) runs this suite.

use std::process::{Child, Command};
use std::time::{Duration, Instant};

use calc_server::{Client, KvError};

/// Kills the child on drop so a failing assert never leaks a server.
struct Reaper(Child);
impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_server(dir: &std::path::Path, port_file: &std::path::Path) -> Reaper {
    let _ = std::fs::remove_file(port_file);
    let child = Command::new(env!("CARGO_BIN_EXE_calc-server"))
        .args([
            "--dir",
            dir.to_str().unwrap(),
            "--port-file",
            port_file.to_str().unwrap(),
            "--window-us",
            "500",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("spawn calc-server binary");
    Reaper(child)
}

fn wait_for_port(port_file: &std::path::Path) -> u16 {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(s) = std::fs::read_to_string(port_file) {
            if let Ok(port) = s.trim().parse() {
                return port;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never published its port"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_mid_traffic_preserves_every_acknowledged_write() {
    const WRITERS: usize = 4;
    let dir = std::env::temp_dir().join(format!("calc-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let port_file = dir.join("port");

    let mut server = spawn_server(&dir, &port_file);
    let port = wait_for_port(&port_file);
    let addr = format!("127.0.0.1:{port}");

    // Concurrent writers, each bumping a monotone counter under its own
    // key and remembering the last acknowledged value.
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let key = 0xB000u64 + w as u64;
                let mut c = Client::connect(&*addr).unwrap();
                let mut last_acked = 0u64;
                for counter in 1..u64::MAX {
                    match c.put(key, &counter.to_le_bytes()) {
                        Ok(_) => last_acked = counter,
                        // The SIGKILL severed the connection; anything
                        // unacknowledged carries no promise.
                        Err(KvError::Io(_)) => break,
                        Err(e) => panic!("writer {w}: {e}"),
                    }
                }
                (key, last_acked)
            })
        })
        .collect();

    // Let real traffic accumulate, then SIGKILL mid-stream: no flush, no
    // drain, no goodbye.
    std::thread::sleep(Duration::from_millis(700));
    server.0.kill().expect("SIGKILL server");
    let _ = server.0.wait();
    let acked: Vec<(u64, u64)> = writers.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        acked.iter().all(|(_, n)| *n > 0),
        "every writer was acknowledged at least once: {acked:?}"
    );

    // Restart over the same directory: boot recovery replays the log.
    let server2 = spawn_server(&dir, &port_file);
    let port = wait_for_port(&port_file);
    let mut c = Client::connect(format!("127.0.0.1:{port}")).unwrap();
    for (key, last_acked) in &acked {
        let v = c
            .get(*key)
            .unwrap()
            .unwrap_or_else(|| panic!("key {key:#x} lost by SIGKILL"));
        let got = u64::from_le_bytes(v[..8].try_into().unwrap());
        assert!(
            got >= *last_acked,
            "key {key:#x}: recovered {got} < acknowledged {last_acked}"
        );
    }
    drop(server2);
    let _ = std::fs::remove_dir_all(&dir);
}
