//! Wire-protocol fuzzing over real TCP: seeded garbage, oversized length
//! prefixes, truncated frames, and byte-at-a-time slowloris peers. The
//! invariants under attack:
//!
//! * the server never panics or wedges a handler,
//! * a framing violation costs the *attacker's* connection only — the
//!   server keeps serving well-formed clients,
//! * no admission permit leaks (`inflight` drains back to 0),
//! * a slow peer is bounded by the frame deadline, not tolerated forever.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use calc_common::rng::SplitMix;
use calc_server::protocol::{read_frame, status, verb, write_frame, MAX_FRAME};
use calc_server::{Client, Server, ServerConfig};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "calc-fuzz-test-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn start_server(dir: &std::path::Path, config: ServerConfig) -> Server {
    let db = calc_server::open_or_recover(dir, |c| {
        c.workers = 2;
        c.group_commit_window = Duration::from_micros(500);
    })
    .unwrap();
    Server::start_with(Arc::new(db), "127.0.0.1:0", config).unwrap()
}

/// Polls HEALTH until `inflight` returns to 0 — the no-leaked-permit
/// oracle. Panics if it never drains.
fn assert_inflight_drains(addr: std::net::SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let fields = c.health_fields().unwrap();
        if fields["inflight"] == "0" {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "inflight never drained to 0: {fields:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Seeded garbage frames: random opcodes with random payloads, all inside
/// the framing rules. Every one must get a typed response (BAD_REQUEST
/// for junk verbs, anything but a panic for the rest) on a connection
/// that stays serviceable.
#[test]
fn garbage_opcodes_get_typed_responses_and_never_wedge() {
    let dir = temp_dir("garbage");
    let server = start_server(&dir, ServerConfig::default());
    let addr = server.local_addr();
    let mut rng = SplitMix::new(0xFADE_0001);

    let stream = TcpStream::connect(addr).unwrap();
    let mut r = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut w = std::io::BufWriter::new(stream);
    for _ in 0..200 {
        // Bias away from well-formed verbs but include them too: a fuzzer
        // that only sends unknown opcodes misses payload-decode panics.
        let op = rng.next_below(256) as u8;
        let len = rng.next_below(64) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
        write_frame(&mut w, op, &payload).unwrap();
        let (st, _body) = read_frame(&mut r)
            .expect("server must answer, not die")
            .expect("server must answer, not close on an in-frame request");
        assert!(
            st <= status::BUSY,
            "response status {st:#04x} is not a defined status"
        );
    }
    // The same connection still serves a well-formed request.
    write_frame(&mut w, verb::GET, &7u64.to_le_bytes()).unwrap();
    let (st, body) = read_frame(&mut r).unwrap().unwrap();
    assert_eq!(st, status::OK);
    assert_eq!(body, vec![0u8]);

    assert_inflight_drains(addr);
    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
}

/// Framing violations — zero length, oversized claims, truncated frames,
/// raw junk bytes — cost the attacker the connection, never the server.
#[test]
fn framing_violations_drop_attacker_but_not_server() {
    let dir = temp_dir("framing");
    let server = start_server(&dir, ServerConfig::default());
    let addr = server.local_addr();

    let attacks: Vec<Vec<u8>> = vec![
        // Zero-length frame.
        0u32.to_le_bytes().to_vec(),
        // Length prefix claiming more than MAX_FRAME.
        (MAX_FRAME + 1).to_le_bytes().to_vec(),
        // u32::MAX claim — must not allocate 4 GiB.
        u32::MAX.to_le_bytes().to_vec(),
        // Truncated frame: claims 100 bytes, sends 3, then EOF.
        {
            let mut v = 100u32.to_le_bytes().to_vec();
            v.extend_from_slice(&[1, 2, 3]);
            v
        },
    ];
    for (i, attack) in attacks.iter().enumerate() {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(attack).unwrap();
        // Half of the runs close abruptly, half shutdown politely.
        if i % 2 == 0 {
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
        // The server must drop us: read sees EOF (or reset), never a hang.
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut sink = [0u8; 64];
        loop {
            match stream.read(&mut sink) {
                Ok(0) => break,       // dropped, as specified
                Ok(_) => continue,    // tolerate a late error frame
                Err(_) => break,      // reset also counts as dropped
            }
        }
        // The server survived and still serves well-formed clients.
        let mut c = Client::connect(addr).unwrap();
        assert!(c.get(1).unwrap().is_none());
    }

    assert_inflight_drains(addr);
    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
}

/// Byte-at-a-time slowloris: a peer that starts a frame and then trickles
/// (or stalls) must be cut off by the frame deadline — bounded per
/// connection, handler freed, no permit leaked.
#[test]
fn slowloris_is_bounded_by_the_frame_deadline() {
    let dir = temp_dir("slowloris");
    let server = start_server(
        &dir,
        ServerConfig {
            frame_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    // A well-formed PUT frame, delivered one byte at a time with pauses
    // that overrun the 300ms frame budget long before the frame is done.
    let mut frame = Vec::new();
    write_frame(&mut frame, verb::PUT, &{
        let mut p = 9u64.to_le_bytes().to_vec();
        p.extend_from_slice(b"slow");
        p
    })
    .unwrap();

    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut cut_off = false;
    for b in &frame {
        if stream.write_all(std::slice::from_ref(b)).is_err() {
            cut_off = true; // server already dropped us mid-trickle
            break;
        }
        std::thread::sleep(Duration::from_millis(60));
    }
    if !cut_off {
        // Writes may all have been buffered; the proof is the read side:
        // EOF/reset instead of a response, within the deadline's order of
        // magnitude rather than the 30s client timeout.
        let mut sink = [0u8; 16];
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => {}
            Ok(_) => panic!("server answered a frame that never completed in time"),
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "slowloris cutoff took {:?} — deadline not enforced",
        started.elapsed()
    );

    // An idle-but-silent connection at a frame BOUNDARY is legitimate and
    // must NOT be cut: open, wait out several frame deadlines, then use it.
    let mut idle = Client::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(900));
    assert!(idle.get(1).unwrap().is_none(), "idle keep-alive survives");

    assert_inflight_drains(addr);
    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
}

/// Seeded chaos mix: many short-lived connections, each randomly choosing
/// an attack (garbage, truncation, abrupt close, slow bytes) or a real
/// request — interleaved with a well-behaved writer verifying the server
/// keeps acknowledging durable work throughout.
#[test]
fn mixed_fault_storm_leaves_server_healthy() {
    let dir = temp_dir("storm");
    let server = start_server(
        &dir,
        ServerConfig {
            frame_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFADE_0002u64);
    let mut rng = SplitMix::new(seed);

    let mut well_behaved = Client::connect(addr).unwrap();
    let mut acked = 0u64;
    for round in 0..60u64 {
        match rng.next_below(4) {
            0 => {
                // Garbage opcode on a throwaway connection.
                if let Ok(stream) = TcpStream::connect(addr) {
                    let mut w = std::io::BufWriter::new(stream);
                    let junk: Vec<u8> = (0..rng.next_below(32)).map(|_| rng.next_below(256) as u8).collect();
                    let _ = write_frame(&mut w, 0x7f, &junk);
                }
            }
            1 => {
                // Truncated frame then abrupt close.
                if let Ok(mut stream) = TcpStream::connect(addr) {
                    let claim = (rng.next_below(1 << 16) + 2) as u32;
                    let _ = stream.write_all(&claim.to_le_bytes());
                    let _ = stream.write_all(&[0u8; 1]);
                }
            }
            2 => {
                // Mid-request stall: partial length prefix, hold briefly.
                if let Ok(mut stream) = TcpStream::connect(addr) {
                    let _ = stream.write_all(&[5u8, 0]);
                    std::thread::sleep(Duration::from_millis(rng.next_below(30)));
                }
            }
            _ => {
                // Instant connect-disconnect.
                drop(TcpStream::connect(addr));
            }
        }
        // The well-behaved client keeps getting durable acks through it all.
        well_behaved
            .put(0xC0FFEE, &round.to_le_bytes())
            .unwrap_or_else(|e| panic!("round {round}: healthy client failed: {e}"));
        acked += 1;
    }
    assert_eq!(acked, 60);
    assert_eq!(
        well_behaved.get(0xC0FFEE).unwrap().as_deref(),
        Some(&59u64.to_le_bytes()[..])
    );

    assert_inflight_drains(addr);
    let db = server.shutdown();
    Arc::try_unwrap(db).unwrap().shutdown();
}
