//! The TCP front-end: listener, connection-handler pool, and request
//! dispatch into the engine's worker pool.
//!
//! Each accepted connection gets a handler thread that decodes frames and
//! calls into the shared [`Database`]. Write verbs go through
//! [`Database::execute_durable`] — the handler thread (never an engine
//! worker) parks on the commit's [`calc_engine`] durability ticket, so an
//! `OK` on the wire means the commit's group-commit batch has been
//! fsynced: ack-after-fsync. Under load many handlers park concurrently
//! and one batch fsync retires all of them — that is where the group
//! commit throughput win comes from.
//!
//! Graceful shutdown ordering ([`Server::shutdown`]):
//!
//! 1. stop accepting (flag + self-connect to unblock `accept`),
//! 2. half-close live connections (`shutdown(Read)`): each handler
//!    finishes its in-flight request, writes the response, then sees EOF
//!    and exits — no acknowledged write is ever dropped,
//! 3. join the handler pool,
//! 4. flush the final group-commit batch (`sync_command_log`),
//! 5. hand the engine back to the caller, whose `Database::shutdown`
//!    stops the checkpoint daemon before the engine drops.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use calc_engine::{Database, SyncError, TxnOutcome};
use calc_txn::proc::params;

use crate::procs;
use crate::protocol::{read_frame, status, verb, write_frame, Frame, Wire, WireError};

/// Handler threads are plentiful (one per connection) and shallow (decode,
/// one engine call, encode), so they run on small stacks.
const HANDLER_STACK: usize = 256 << 10;

/// A running TCP front-end over a shared engine.
pub struct Server {
    db: Arc<Database>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `db`.
    pub fn start(db: Arc<Database>, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));

        let accept_handle = {
            let db = db.clone();
            let stop = stop.clone();
            let handlers = handlers.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("calc-accept".into())
                .spawn(move || {
                    accept_loop(&listener, &db, &stop, &handlers, &conns);
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            db,
            local_addr,
            stop,
            accept_handle: Some(accept_handle),
            handlers,
            conns,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine this server fronts.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Gracefully stops the server (see the module docs for the ordering)
    /// and returns the engine so the caller can continue embedding it or
    /// shut it down. Every write acknowledged `OK` before this returns is
    /// durable on disk.
    pub fn shutdown(mut self) -> Arc<Database> {
        self.stop_impl();
        self.db.clone()
    }

    fn stop_impl(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop; it observes the flag and exits.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Half-close live connections: the write side stays open so each
        // handler's in-flight response still reaches the client.
        for stream in self.conns.lock().values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for h in self.handlers.lock().drain(..) {
            let _ = h.join();
        }
        // Final group-commit flush: belt-and-braces for any fire-and-
        // forget submits sharing this engine (the server's own writes are
        // already fsynced before their acks). A dead logger here is
        // degraded durability, already surfaced per-request as ERR.
        if let Err(e) = self.db.sync_command_log() {
            eprintln!("calc-server: final command-log flush failed: {e}");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

fn accept_loop(
    listener: &TcpListener,
    db: &Arc<Database>,
    stop: &Arc<AtomicBool>,
    handlers: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    conns: &Arc<Mutex<HashMap<u64, TcpStream>>>,
) {
    let next_id = AtomicU64::new(0);
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) if stop.load(Ordering::Acquire) => return,
            Err(_) => continue,
        };
        if stop.load(Ordering::Acquire) {
            return; // the shutdown self-connect (or a raced client)
        }
        let _ = stream.set_nodelay(true);
        let id = next_id.fetch_add(1, Ordering::Relaxed);
        let Ok(registry_clone) = stream.try_clone() else {
            continue;
        };
        conns.lock().insert(id, registry_clone);
        db.health().connection_opened();
        let handle = {
            let db = db.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name(format!("calc-conn-{id}"))
                .stack_size(HANDLER_STACK)
                .spawn(move || {
                    let _ = handle_conn(&db, stream);
                    conns.lock().remove(&id);
                    db.health().connection_closed();
                })
                .expect("spawn connection handler")
        };
        handlers.lock().push(handle);
    }
}

fn handle_conn(db: &Arc<Database>, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some((op, body)) = read_frame(&mut reader)? {
        let (st, payload) = dispatch(db, op, &body);
        write_frame(&mut writer, st, &payload)?;
    }
    writer.flush()
}

/// Decodes and executes one request; returns `(status, payload)`.
fn dispatch(db: &Database, op: u8, body: &[u8]) -> (u8, Vec<u8>) {
    match try_dispatch(db, op, body) {
        Ok(resp) => resp,
        Err(e) => (status::BAD_REQUEST, e.to_string().into_bytes()),
    }
}

fn try_dispatch(db: &Database, op: u8, body: &[u8]) -> Result<(u8, Vec<u8>), WireError> {
    let mut w = Wire::new(body);
    match op {
        verb::GET => {
            let key = w.u64()?;
            Ok((status::OK, encode_value(db.get(calc_common::types::Key(key)))))
        }
        verb::PUT => {
            let key = w.u64()?;
            let value = w.tail();
            let p = params::Writer::new().u64(key).bytes(value).finish();
            Ok(durable_outcome(db.execute_durable(procs::PUT, p)))
        }
        verb::DEL => {
            let key = w.u64()?;
            let p = params::Writer::new().u64(key).finish();
            Ok(durable_outcome(db.execute_durable(procs::DEL, p)))
        }
        verb::CAS => {
            let key = w.u64()?;
            let flag = w.u8()?;
            let mut p = params::Writer::new().u64(key).u64(flag as u64);
            if flag != 0 {
                p = p.bytes(w.bytes()?);
            }
            let p = p.bytes(w.tail()).finish();
            Ok(durable_outcome(db.execute_durable(procs::CAS, p)))
        }
        verb::MGET => {
            let n = w.u32()?;
            let mut out = Frame::new().u32(n);
            for _ in 0..n {
                let key = w.u64()?;
                match db.get(calc_common::types::Key(key)) {
                    Some(v) => out = out.u8(1).bytes(&v),
                    None => out = out.u8(0),
                }
            }
            Ok((status::OK, out.finish()))
        }
        verb::MPUT => {
            let n = w.u32()?;
            let mut p = params::Writer::new().u32(n);
            for _ in 0..n {
                p = p.u64(w.u64()?).bytes(w.bytes()?);
            }
            Ok(durable_outcome(db.execute_durable(procs::MPUT, p.finish())))
        }
        verb::HEALTH => Ok((status::OK, health_text(db).into_bytes())),
        verb::CHECKPOINT => Ok(match db.checkpoint_now() {
            Ok(s) => (
                status::OK,
                format!(
                    "kind={} id={} records={} bytes={} duration_us={} quiesce_us={}",
                    s.kind,
                    s.id,
                    s.records,
                    s.bytes,
                    s.duration.as_micros(),
                    s.quiesce.as_micros()
                )
                .into_bytes(),
            ),
            Err(e) => (status::ERR, format!("checkpoint failed: {e}").into_bytes()),
        }),
        verb::STATS => Ok((status::OK, stats_text(db).into_bytes())),
        other => Err(WireError(match other {
            0x07..=0x0f => "unassigned data verb",
            _ => "unknown verb",
        })),
    }
}

/// `GET` response payload: `u8` presence flag, then the value as the
/// trailing field.
fn encode_value(v: Option<calc_common::types::Value>) -> Vec<u8> {
    match v {
        Some(v) => Frame::new().u8(1).tail(&v).finish(),
        None => Frame::new().u8(0).finish(),
    }
}

/// Maps a durable execution to a wire response. `OK` is sent only after
/// the commit's batch fsync — the ack-after-fsync guarantee.
fn durable_outcome(result: Result<TxnOutcome, SyncError>) -> (u8, Vec<u8>) {
    match result {
        Ok(TxnOutcome::Committed(seq)) => (status::OK, Frame::new().u64(seq.0).finish()),
        Ok(TxnOutcome::Aborted(reason)) => (status::ABORTED, reason.to_string().into_bytes()),
        // Committed in memory but durability unconfirmed: the client must
        // treat the write as possibly-lost, so it is NOT an OK.
        Err(e) => (status::ERR, format!("durability unconfirmed: {e}").into_bytes()),
    }
}

/// `HEALTH` verb: one `key=value` per line, stable names — the group-
/// commit and connection counters the benchmark and operators read.
fn health_text(db: &Database) -> String {
    let h = db.health();
    let m = db.metrics();
    format!(
        "committed={}\naborted={}\nrecords={}\ncommit_batches={}\ncommit_batch_records={}\n\
         avg_batch_size={:.2}\nfsync_p99_us={}\nactive_connections={}\ntotal_connections={}\n\
         degraded={}\ncheckpoint_failures={}\n",
        m.committed(),
        m.aborted(),
        db.record_count(),
        h.commit_batches(),
        h.commit_batch_records(),
        h.avg_batch_size(),
        h.fsync_p99_us(),
        h.active_connections(),
        h.total_connections(),
        h.degraded(),
        h.total_failures(),
    )
}

/// `STATS` verb: the published checkpoint chain plus retention totals.
fn stats_text(db: &Database) -> String {
    let h = db.health();
    let mut out = String::new();
    for m in db.checkpoint_dir().scan().unwrap_or_default() {
        out.push_str(&format!(
            "checkpoint kind={} id={} records={} watermark={}\n",
            m.kind, m.id, m.records, m.watermark
        ));
    }
    out.push_str(&format!(
        "last_checkpoint_bytes={}\nlast_checkpoint_raw_bytes={}\ncheckpoints_pruned={}\n\
         log_segments_truncated={}\nlog_bytes_truncated={}\n",
        h.last_checkpoint_bytes(),
        h.last_checkpoint_raw_bytes(),
        h.checkpoints_pruned(),
        h.log_segments_truncated(),
        h.log_bytes_truncated(),
    ));
    out
}
