//! The TCP front-end: listener, connection-handler pool, and request
//! dispatch into the engine's worker pool.
//!
//! Each accepted connection gets a handler thread that decodes frames and
//! calls into the shared [`Database`]. Write verbs go through
//! [`Database::execute_durable`] — the handler thread (never an engine
//! worker) parks on the commit's [`calc_engine`] durability ticket, so an
//! `OK` on the wire means the commit's group-commit batch has been
//! fsynced: ack-after-fsync. Under load many handlers park concurrently
//! and one batch fsync retires all of them — that is where the group
//! commit throughput win comes from.
//!
//! Overload resilience (admission control): the accept loop enforces a
//! connection cap ([`ServerConfig::max_connections`]) — excess connects
//! get one `BUSY` frame and a close, never a silent hang. Data verbs
//! acquire a permit from a bounded in-flight [`calc_common::Gate`] before
//! touching the engine; a permit that does not free up within
//! [`ServerConfig::queue_deadline`] sheds the request with `BUSY`
//! *before any work happens*, keeping latency bounded for the requests
//! actually admitted. Monitoring verbs (`HEALTH`, `STATS`, `CHECKPOINT`)
//! bypass the gate so operators can see an overloaded server. Frame reads
//! run under a total per-frame deadline ([`ServerConfig::frame_timeout`])
//! once the first byte arrives, so a slowloris peer trickling bytes pins
//! one connection slot, not a handler forever.
//!
//! Graceful shutdown ordering ([`Server::shutdown`]):
//!
//! 1. stop accepting (flag + self-connect to unblock `accept`),
//! 2. half-close live connections (`shutdown(Read)`): each handler
//!    finishes its in-flight request, writes the response, then sees EOF
//!    and exits — no acknowledged write is ever dropped,
//! 3. join the handler pool,
//! 4. flush the final group-commit batch (`sync_command_log`),
//! 5. hand the engine back to the caller, whose `Database::shutdown`
//!    stops the checkpoint daemon before the engine drops.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use calc_common::load::Gate;
use calc_engine::{Database, SyncError, TxnOutcome};
use calc_txn::proc::params;

use crate::procs;
use crate::protocol::{status, verb, write_frame, Frame, Wire, WireError, MAX_FRAME};

/// Handler threads are plentiful (one per connection) and shallow (decode,
/// one engine call, encode), so they run on small stacks.
const HANDLER_STACK: usize = 256 << 10;

/// Admission-control and socket-hygiene knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connection cap: accepts beyond this many live connections get one
    /// `BUSY` frame and an immediate close. `0` is unlimited.
    pub max_connections: usize,
    /// In-flight request cap across all connections (the permit gate for
    /// data verbs). `0` is unlimited — the gate still tracks the inflight
    /// gauge for load grading but never sheds.
    pub max_inflight: usize,
    /// How long a data request may queue for an in-flight permit before
    /// being shed with `BUSY`. Bounds queueing delay, which is what keeps
    /// accepted-request p99 flat under overload.
    pub queue_deadline: Duration,
    /// Total deadline for reading one frame once its first byte arrived —
    /// the slowloris bound. Idling *between* frames is unlimited (a quiet
    /// keep-alive connection is legitimate).
    pub frame_timeout: Duration,
    /// Socket write timeout for responses (a peer that stops reading
    /// cannot wedge a handler mid-response).
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 1024,
            max_inflight: 0,
            queue_deadline: Duration::from_millis(100),
            frame_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
        }
    }
}

/// A running TCP front-end over a shared engine.
pub struct Server {
    db: Arc<Database>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `db` with default admission control
    /// ([`ServerConfig::default`]).
    pub fn start(db: Arc<Database>, addr: &str) -> io::Result<Server> {
        Self::start_with(db, addr, ServerConfig::default())
    }

    /// [`Server::start`] with explicit admission-control knobs.
    pub fn start_with(db: Arc<Database>, addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        // The permit gate shares the engine's load signal, so sheds and
        // the inflight gauge feed the same LoadLevel the checkpoint
        // pacer reads.
        let gate = Gate::new(config.max_inflight, db.load().clone());

        let accept_handle = {
            let db = db.clone();
            let stop = stop.clone();
            let handlers = handlers.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("calc-accept".into())
                .spawn(move || {
                    accept_loop(&listener, &db, &stop, &handlers, &conns, &gate, &config);
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            db,
            local_addr,
            stop,
            accept_handle: Some(accept_handle),
            handlers,
            conns,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine this server fronts.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Gracefully stops the server (see the module docs for the ordering)
    /// and returns the engine so the caller can continue embedding it or
    /// shut it down. Every write acknowledged `OK` before this returns is
    /// durable on disk.
    pub fn shutdown(mut self) -> Arc<Database> {
        self.stop_impl();
        self.db.clone()
    }

    fn stop_impl(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop; it observes the flag and exits.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Half-close live connections: the write side stays open so each
        // handler's in-flight response still reaches the client.
        for stream in self.conns.lock().values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for h in self.handlers.lock().drain(..) {
            let _ = h.join();
        }
        // Final group-commit flush: belt-and-braces for any fire-and-
        // forget submits sharing this engine (the server's own writes are
        // already fsynced before their acks). A dead logger here is
        // degraded durability, already surfaced per-request as ERR.
        if let Err(e) = self.db.sync_command_log() {
            eprintln!("calc-server: final command-log flush failed: {e}");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    db: &Arc<Database>,
    stop: &Arc<AtomicBool>,
    handlers: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    conns: &Arc<Mutex<HashMap<u64, TcpStream>>>,
    gate: &Arc<Gate>,
    config: &ServerConfig,
) {
    let next_id = AtomicU64::new(0);
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) if stop.load(Ordering::Acquire) => return,
            Err(_) => continue,
        };
        if stop.load(Ordering::Acquire) {
            return; // the shutdown self-connect (or a raced client)
        }
        let _ = stream.set_nodelay(true);
        // Connection cap: shed with one typed BUSY frame, never a silent
        // hang — the client knows to back off and retry elsewhere/later.
        if config.max_connections > 0 && conns.lock().len() >= config.max_connections {
            db.load().record_shed_connection();
            db.load().note_pressure();
            let mut w = BufWriter::new(stream);
            let _ = write_frame(&mut w, status::BUSY, b"connection limit reached");
            continue; // drop closes the socket
        }
        let id = next_id.fetch_add(1, Ordering::Relaxed);
        let Ok(registry_clone) = stream.try_clone() else {
            continue;
        };
        conns.lock().insert(id, registry_clone);
        db.health().connection_opened();
        let handle = {
            let db = db.clone();
            let conns = conns.clone();
            let gate = gate.clone();
            let config = config.clone();
            std::thread::Builder::new()
                .name(format!("calc-conn-{id}"))
                .stack_size(HANDLER_STACK)
                .spawn(move || {
                    let _ = handle_conn(&db, stream, &gate, &config);
                    conns.lock().remove(&id);
                    db.health().connection_closed();
                })
                .expect("spawn connection handler")
        };
        handlers.lock().push(handle);
    }
}

/// Reads exactly `buf.len()` bytes with a total deadline, driving the
/// socket's read timeout down as the deadline approaches. Returns
/// `TimedOut` when the deadline passes mid-frame — the slowloris bound.
fn read_exact_deadline(
    stream: &TcpStream,
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
    deadline: Instant,
) -> io::Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let now = Instant::now();
        if now >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "frame deadline passed (slow peer)",
            ));
        }
        stream.set_read_timeout(Some(deadline - now))?;
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "frame deadline passed (slow peer)",
                ))
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// [`crate::protocol::read_frame`] with the slowloris bound: idling at a
/// frame *boundary* is unlimited (a quiet keep-alive connection is
/// legitimate and half-closed sockets deliver EOF), but once the first
/// byte of a frame arrives the rest must land within `frame_timeout`.
fn read_frame_timed(
    stream: &TcpStream,
    reader: &mut BufReader<TcpStream>,
    frame_timeout: Duration,
) -> io::Result<Option<(u8, Vec<u8>)>> {
    // Block indefinitely for the first byte of the length prefix.
    stream.set_read_timeout(None)?;
    let mut len_buf = [0u8; 4];
    loop {
        match reader.read(&mut len_buf[..1]) {
            Ok(0) => return Ok(None), // clean EOF at the boundary
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // A frame has started: everything else is deadline-bounded.
    let deadline = Instant::now() + frame_timeout;
    read_exact_deadline(stream, reader, &mut len_buf[1..], deadline)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside (0, {MAX_FRAME}]"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_deadline(stream, reader, &mut body, deadline)?;
    let opcode = body[0];
    body.drain(..1);
    Ok(Some((opcode, body)))
}

/// Whether this verb mutates state (write verbs are rejected while the
/// command log is in read-only degraded mode).
fn is_write_verb(op: u8) -> bool {
    matches!(op, verb::PUT | verb::DEL | verb::CAS | verb::MPUT)
}

/// Whether this verb goes through the in-flight permit gate. Monitoring
/// and checkpoint verbs bypass it: an operator must be able to see (and
/// drain) an overloaded server.
fn is_gated_verb(op: u8) -> bool {
    matches!(
        op,
        verb::GET | verb::PUT | verb::DEL | verb::CAS | verb::MGET | verb::MPUT
    )
}

fn handle_conn(
    db: &Arc<Database>,
    stream: TcpStream,
    gate: &Arc<Gate>,
    config: &ServerConfig,
) -> io::Result<()> {
    stream.set_write_timeout(Some(config.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream.try_clone()?);
    while let Some((op, body)) = read_frame_timed(&stream, &mut reader, config.frame_timeout)? {
        let (st, payload) = admit_and_dispatch(db, gate, config, op, &body);
        write_frame(&mut writer, st, &payload)?;
    }
    writer.flush()
}

/// Admission control in front of [`dispatch`]: data verbs take an
/// in-flight permit (shedding with `BUSY` on deadline) and write verbs
/// are shed while the command log is read-only (ENOSPC degradation).
fn admit_and_dispatch(
    db: &Arc<Database>,
    gate: &Arc<Gate>,
    config: &ServerConfig,
    op: u8,
    body: &[u8],
) -> (u8, Vec<u8>) {
    if !is_gated_verb(op) {
        return dispatch(db, op, body);
    }
    let Some(_permit) = gate.try_acquire_for(config.queue_deadline) else {
        return (
            status::BUSY,
            b"server overloaded: no in-flight permit within the queue deadline".to_vec(),
        );
    };
    if is_write_verb(op) && db.log_read_only() {
        db.load().record_shed_request();
        db.load().note_pressure();
        return (
            status::BUSY,
            b"command log read-only (out of disk space): write shed".to_vec(),
        );
    }
    dispatch(db, op, body)
}

/// Decodes and executes one request; returns `(status, payload)`.
fn dispatch(db: &Database, op: u8, body: &[u8]) -> (u8, Vec<u8>) {
    match try_dispatch(db, op, body) {
        Ok(resp) => resp,
        Err(e) => (status::BAD_REQUEST, e.to_string().into_bytes()),
    }
}

fn try_dispatch(db: &Database, op: u8, body: &[u8]) -> Result<(u8, Vec<u8>), WireError> {
    let mut w = Wire::new(body);
    match op {
        verb::GET => {
            let key = w.u64()?;
            Ok((status::OK, encode_value(db.get(calc_common::types::Key(key)))))
        }
        verb::PUT => {
            let key = w.u64()?;
            let value = w.tail();
            let p = params::Writer::new().u64(key).bytes(value).finish();
            Ok(durable_outcome(db.execute_durable(procs::PUT, p)))
        }
        verb::DEL => {
            let key = w.u64()?;
            let p = params::Writer::new().u64(key).finish();
            Ok(durable_outcome(db.execute_durable(procs::DEL, p)))
        }
        verb::CAS => {
            let key = w.u64()?;
            let flag = w.u8()?;
            let mut p = params::Writer::new().u64(key).u64(flag as u64);
            if flag != 0 {
                p = p.bytes(w.bytes()?);
            }
            let p = p.bytes(w.tail()).finish();
            Ok(durable_outcome(db.execute_durable(procs::CAS, p)))
        }
        verb::MGET => {
            let n = w.u32()?;
            let mut out = Frame::new().u32(n);
            for _ in 0..n {
                let key = w.u64()?;
                match db.get(calc_common::types::Key(key)) {
                    Some(v) => out = out.u8(1).bytes(&v),
                    None => out = out.u8(0),
                }
            }
            Ok((status::OK, out.finish()))
        }
        verb::MPUT => {
            let n = w.u32()?;
            let mut p = params::Writer::new().u32(n);
            for _ in 0..n {
                p = p.u64(w.u64()?).bytes(w.bytes()?);
            }
            Ok(durable_outcome(db.execute_durable(procs::MPUT, p.finish())))
        }
        verb::HEALTH => Ok((status::OK, health_text(db).into_bytes())),
        verb::CHECKPOINT => Ok(match db.checkpoint_now() {
            Ok(s) => (
                status::OK,
                format!(
                    "kind={} id={} records={} bytes={} duration_us={} quiesce_us={}",
                    s.kind,
                    s.id,
                    s.records,
                    s.bytes,
                    s.duration.as_micros(),
                    s.quiesce.as_micros()
                )
                .into_bytes(),
            ),
            Err(e) => (status::ERR, format!("checkpoint failed: {e}").into_bytes()),
        }),
        verb::STATS => Ok((status::OK, stats_text(db).into_bytes())),
        other => Err(WireError(match other {
            0x07..=0x0f => "unassigned data verb",
            _ => "unknown verb",
        })),
    }
}

/// `GET` response payload: `u8` presence flag, then the value as the
/// trailing field.
fn encode_value(v: Option<calc_common::types::Value>) -> Vec<u8> {
    match v {
        Some(v) => Frame::new().u8(1).tail(&v).finish(),
        None => Frame::new().u8(0).finish(),
    }
}

/// Maps a durable execution to a wire response. `OK` is sent only after
/// the commit's batch fsync — the ack-after-fsync guarantee.
fn durable_outcome(result: Result<TxnOutcome, SyncError>) -> (u8, Vec<u8>) {
    match result {
        Ok(TxnOutcome::Committed(seq)) => (status::OK, Frame::new().u64(seq.0).finish()),
        Ok(TxnOutcome::Aborted(reason)) => (status::ABORTED, reason.to_string().into_bytes()),
        // Committed in memory but durability unconfirmed: the client must
        // treat the write as possibly-lost, so it is NOT an OK.
        Err(e) => (status::ERR, format!("durability unconfirmed: {e}").into_bytes()),
    }
}

/// `HEALTH` verb: one `key=value` per line, stable names — the group-
/// commit and connection counters the benchmark and operators read.
fn health_text(db: &Database) -> String {
    let h = db.health();
    let m = db.metrics();
    let load = db.load();
    let mut out = format!(
        "committed={}\naborted={}\nrecords={}\ncommit_batches={}\ncommit_batch_records={}\n\
         avg_batch_size={:.2}\nfsync_p99_us={}\nactive_connections={}\ntotal_connections={}\n\
         degraded={}\ncheckpoint_failures={}\nload_level={}\ninflight={}\nshed_requests={}\n\
         shed_connections={}\ncapture_yields={}\nlog_read_only={}\nlog_enospc_entries={}\n\
         emergency_retention_passes={}\nexecutor_mode={}\nsingle_shard_txns={}\n\
         cross_shard_txns={}\nrouting_fallbacks={}\n",
        m.committed(),
        m.aborted(),
        db.record_count(),
        h.commit_batches(),
        h.commit_batch_records(),
        h.avg_batch_size(),
        h.fsync_p99_us(),
        h.active_connections(),
        h.total_connections(),
        h.degraded(),
        h.total_failures(),
        load.level(),
        load.inflight(),
        load.shed_requests(),
        load.shed_connections(),
        load.capture_yields(),
        db.log_read_only() || h.log_read_only(),
        h.log_enospc_entries(),
        h.emergency_retention_passes(),
        db.executor_mode(),
        h.single_shard_txns(),
        h.cross_shard_txns(),
        h.routing_fallbacks(),
    );
    // Per-worker queue depths, one gauge per owned worker (empty under
    // the pool executor, which shares a single queue).
    for (i, d) in h.worker_queue_depths().iter().enumerate() {
        out.push_str(&format!("worker_queue_depth_{i}={d}\n"));
    }
    out
}

/// `STATS` verb: the published checkpoint chain plus retention totals.
fn stats_text(db: &Database) -> String {
    let h = db.health();
    let mut out = String::new();
    for m in db.checkpoint_dir().scan().unwrap_or_default() {
        out.push_str(&format!(
            "checkpoint kind={} id={} records={} watermark={}\n",
            m.kind, m.id, m.records, m.watermark
        ));
    }
    out.push_str(&format!(
        "last_checkpoint_bytes={}\nlast_checkpoint_raw_bytes={}\ncheckpoints_pruned={}\n\
         log_segments_truncated={}\nlog_bytes_truncated={}\n",
        h.last_checkpoint_bytes(),
        h.last_checkpoint_raw_bytes(),
        h.checkpoints_pruned(),
        h.log_segments_truncated(),
        h.log_bytes_truncated(),
    ));
    out
}
