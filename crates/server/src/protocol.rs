//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame — request or response — is laid out as
//!
//! ```text
//! ┌──────────┬─────────────┬───────────────────┐
//! │ len: u32 │ opcode: u8  │ payload: len-1 B  │
//! └──────────┴─────────────┴───────────────────┘
//! ```
//!
//! `len` (little-endian) counts the opcode byte plus the payload, so an
//! empty-payload frame has `len = 1`. Requests carry a verb opcode;
//! responses carry a status opcode. Integers inside payloads are
//! little-endian; variable-length fields are `u32` length-prefixed unless
//! they are the frame's trailing field, which runs to the end of the
//! payload (the frame length already bounds it).
//!
//! See `DESIGN.md` §9 for the full per-verb payload table.

use std::io::{self, Read, Write};

/// Hard cap on a single frame's `len` field. Far above any legitimate
/// request (values are memory-resident records, not blobs); a frame
/// claiming more is a protocol error or garbage on the port, and the
/// connection is dropped instead of the server allocating the claim.
pub const MAX_FRAME: u32 = 16 << 20;

/// Request verbs.
pub mod verb {
    /// Point read: `key: u64` → value or absent.
    pub const GET: u8 = 0x01;
    /// Upsert: `key: u64, value: rest` → commit seq (durable).
    pub const PUT: u8 = 0x02;
    /// Delete: `key: u64` → commit seq (durable); aborts if absent.
    pub const DEL: u8 = 0x03;
    /// Compare-and-set: `key: u64, flag: u8, [expected: bytes,] new: rest`
    /// → commit seq (durable); aborts on mismatch. `flag = 0` expects the
    /// key to be absent (pure insert).
    pub const CAS: u8 = 0x04;
    /// Batch read: `n: u32, n × key: u64` → n values/absences.
    pub const MGET: u8 = 0x05;
    /// Batch upsert in ONE transaction: `n: u32, n × (key: u64, value:
    /// bytes)` → one commit seq covering all n writes (durable).
    pub const MPUT: u8 = 0x06;
    /// Engine health + group-commit + connection counters, as text.
    pub const HEALTH: u8 = 0x10;
    /// Trigger a checkpoint cycle now; responds when capture completes.
    pub const CHECKPOINT: u8 = 0x11;
    /// Checkpoint directory + retention stats, as text.
    pub const STATS: u8 = 0x12;
}

/// Response statuses.
pub mod status {
    /// Success; payload is verb-specific.
    pub const OK: u8 = 0x00;
    /// The transaction aborted (rolled back); payload is the reason text.
    pub const ABORTED: u8 = 0x01;
    /// Server-side failure (I/O, durability loss); payload is the message.
    pub const ERR: u8 = 0x02;
    /// Malformed request frame; payload is the message. The connection
    /// stays open — framing is intact, only the payload was bad.
    pub const BAD_REQUEST: u8 = 0x03;
    /// Admission control shed this request (or connection) *before*
    /// executing anything: the in-flight permit gate timed out, the
    /// connection cap was hit, or the engine is in read-only degraded
    /// mode. Always safe to retry — the server did no work on it.
    pub const BUSY: u8 = 0x04;
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> io::Result<()> {
    let len = 1 + payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[opcode])?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF on the frame boundary (the
/// peer closed); EOF mid-frame is an error (torn frame).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside (0, {MAX_FRAME}]"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let opcode = body[0];
    body.drain(..1);
    Ok(Some((opcode, body)))
}

/// Payload builder matching [`Wire`].
#[derive(Default)]
pub struct Frame {
    buf: Vec<u8>,
}

impl Frame {
    /// Empty payload builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32`.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u8`.
    pub fn u8(mut self, v: u8) -> Self {
        self.buf.push(v);
        self
    }

    /// Appends a `u32` length-prefixed byte field.
    pub fn bytes(mut self, b: &[u8]) -> Self {
        self.buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(b);
        self
    }

    /// Appends raw bytes with no prefix — only valid as the trailing
    /// field (the frame length bounds it).
    pub fn tail(mut self, b: &[u8]) -> Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// The finished payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Payload cursor matching [`Frame`].
pub struct Wire<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// A malformed payload (truncated or over-long field).
#[derive(Debug)]
pub struct WireError(pub &'static str);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed payload: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl<'a> Wire<'a> {
    /// Cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Wire { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError("length overflow"))?;
        if end > self.buf.len() {
            return Err(WireError(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, "truncated u64")?.try_into().unwrap(),
        ))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, "truncated u32")?.try_into().unwrap(),
        ))
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "truncated u8")?[0])
    }

    /// Reads a `u32` length-prefixed byte field.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len, "truncated bytes")
    }

    /// Consumes everything left — the trailing field.
    pub fn tail(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Unread byte count.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = Frame::new().u64(7).u8(1).bytes(b"abc").tail(b"xyz").finish();
        let mut wire = Vec::new();
        write_frame(&mut wire, verb::CAS, &payload).unwrap();
        let mut cursor = io::Cursor::new(wire);
        let (op, body) = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(op, verb::CAS);
        let mut w = Wire::new(&body);
        assert_eq!(w.u64().unwrap(), 7);
        assert_eq!(w.u8().unwrap(), 1);
        assert_eq!(w.bytes().unwrap(), b"abc");
        assert_eq!(w.tail(), b"xyz");
        assert_eq!(w.remaining(), 0);
        // Clean EOF after the last frame.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn empty_payload_frame_has_len_one() {
        let mut wire = Vec::new();
        write_frame(&mut wire, verb::HEALTH, &[]).unwrap();
        assert_eq!(&wire[..4], &1u32.to_le_bytes());
        let (op, body) = read_frame(&mut io::Cursor::new(wire)).unwrap().unwrap();
        assert_eq!(op, verb::HEALTH);
        assert!(body.is_empty());
    }

    #[test]
    fn oversized_and_zero_frames_are_rejected() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(read_frame(&mut io::Cursor::new(oversized)).is_err());
        let zero = 0u32.to_le_bytes().to_vec();
        assert!(read_frame(&mut io::Cursor::new(zero)).is_err());
    }

    #[test]
    fn torn_frame_is_an_error_not_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, verb::GET, &Frame::new().u64(1).finish()).unwrap();
        wire.truncate(wire.len() - 3);
        let mut cursor = io::Cursor::new(wire);
        assert!(read_frame(&mut cursor).is_err(), "mid-frame EOF must fail");
    }

    #[test]
    fn truncated_payload_fields_are_typed_errors() {
        let payload = Frame::new().u32(100).finish(); // claims 100 bytes, has 0
        let mut w = Wire::new(&payload);
        assert!(w.bytes().is_err());
        let mut w = Wire::new(&[1, 2]);
        assert!(w.u64().is_err());
    }
}
