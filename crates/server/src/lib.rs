//! calc-server: a TCP front-end for the calc engine.
//!
//! The paper's motivating setting is a main-memory database serving live
//! transactions while CALC checkpoints asynchronously — this crate is
//! that serving path. It speaks a length-prefixed binary wire protocol
//! ([`protocol`]) over TCP, runs one handler thread per connection
//! ([`server`]), and acknowledges write verbs only after their commit's
//! group-commit batch has been fsynced (ack-after-fsync, via
//! [`calc_engine::Database::execute_durable`]); the group-commit
//! machinery itself lives in `calc_recovery::group_commit`.
//!
//! [`client`] is the matching blocking client, used by the examples, the
//! multi-connection load generator in `calc-bench`, and the tests.

#![warn(missing_docs)]

pub mod client;
pub mod procs;
pub mod protocol;
pub mod server;

pub use calc_engine::ExecutorMode;
pub use client::{key_of, Client, ClientConfig, KvError, KvResult};
pub use server::{Server, ServerConfig};

/// Opens (or recovers) a calc-server engine over `dir`: checkpoints under
/// `dir/ckpts`, segmented command log under `dir/cmdlog`. If durable
/// state exists from a previous run, it is recovered — checkpoint chain
/// loaded, log tail replayed — before the engine starts serving, so every
/// write acknowledged before a crash is visible after restart.
pub fn open_or_recover(
    dir: &std::path::Path,
    mut tune: impl FnMut(&mut calc_engine::EngineConfig),
) -> std::io::Result<calc_engine::Database> {
    use calc_common::vfs::OsVfs;

    let ckpt_dir = dir.join("ckpts");
    let log_dir = dir.join("cmdlog");
    // Read surviving log records BEFORE the engine opens: opening creates
    // a fresh active segment (never appending into survivors), and replay
    // wants only the pre-crash records.
    let commands = if log_dir.is_dir() {
        calc_recovery::read_dir_logs(&OsVfs, &log_dir).unwrap_or_default()
    } else {
        Vec::new()
    };
    let had_state = !commands.is_empty()
        || std::fs::read_dir(&ckpt_dir).map(|mut d| d.next().is_some()).unwrap_or(false);

    let mut config = calc_engine::EngineConfig::new(
        calc_engine::StrategyKind::Calc,
        1 << 20,
        64,
        ckpt_dir,
    );
    config.command_log_dir = Some(log_dir);
    tune(&mut config);
    let db = calc_engine::Database::open(config, procs::registry())?;
    if had_state {
        db.recover(&commands)
            .map_err(|e| std::io::Error::other(format!("recovery failed: {e}")))?;
    }
    Ok(db)
}
