//! The server's stored-procedure set. The wire protocol's write verbs map
//! 1:1 onto these; registering them at both the server and any recovering
//! process is the determinism contract command-log replay depends on.

use std::sync::Arc;

use calc_common::types::Key;
use calc_txn::proc::{
    params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps,
};

/// Upsert one key: `u64 key, bytes value`.
pub const PUT: ProcId = ProcId(1);
/// Delete one key: `u64 key`; aborts if absent.
pub const DEL: ProcId = ProcId(2);
/// Compare-and-set: `u64 key, u8 flag, bytes expected-if-flag, bytes new`;
/// aborts on mismatch. `flag = 0` expects the key absent (pure insert).
pub const CAS: ProcId = ProcId(3);
/// Multi-key upsert in one transaction: `u32 n, n × (u64 key, bytes value)`.
pub const MPUT: ProcId = ProcId(4);

struct PutProc;
impl Procedure for PutProc {
    fn id(&self) -> ProcId {
        PUT
    }
    fn name(&self) -> &'static str {
        "put"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        let value = r.bytes()?;
        if ops.get(key).is_some() {
            ops.put(key, value);
        } else {
            ops.insert(key, value);
        }
        Ok(())
    }
}

struct DelProc;
impl Procedure for DelProc {
    fn id(&self) -> ProcId {
        DEL
    }
    fn name(&self) -> &'static str {
        "del"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        if !ops.delete(Key(r.u64()?)) {
            return Err(AbortReason::Logic("no such key".into()));
        }
        Ok(())
    }
}

struct CasProc;
impl Procedure for CasProc {
    fn id(&self) -> ProcId {
        CAS
    }
    fn name(&self) -> &'static str {
        "cas"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        let expects_value = r.u64()? != 0;
        let expected = if expects_value { Some(r.bytes()?) } else { None };
        let new = r.bytes()?;
        let current = ops.get(key);
        match (expected, current) {
            (None, None) => {
                ops.insert(key, new);
                Ok(())
            }
            (Some(exp), Some(cur)) if *cur == *exp => {
                ops.put(key, new);
                Ok(())
            }
            (None, Some(_)) => Err(AbortReason::Logic("cas: key already exists".into())),
            (Some(_), None) => Err(AbortReason::Logic("cas: key absent".into())),
            (Some(_), Some(_)) => Err(AbortReason::Logic("cas: value mismatch".into())),
        }
    }
}

struct MputProc;
impl Procedure for MputProc {
    fn id(&self) -> ProcId {
        MPUT
    }
    fn name(&self) -> &'static str {
        "mput"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        let n = r.u32()?;
        let mut writes = Vec::with_capacity(n as usize);
        for _ in 0..n {
            writes.push(Key(r.u64()?));
            r.bytes()?;
        }
        Ok(LockRequest {
            reads: vec![],
            writes,
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let n = r.u32()?;
        for _ in 0..n {
            let key = Key(r.u64()?);
            let value = r.bytes()?;
            if ops.get(key).is_some() {
                ops.put(key, value);
            } else {
                ops.insert(key, value);
            }
        }
        Ok(())
    }
}

/// The registry every calc-server engine (serving or recovering) runs
/// with.
pub fn registry() -> ProcRegistry {
    let mut r = ProcRegistry::new();
    r.register(Arc::new(PutProc));
    r.register(Arc::new(DelProc));
    r.register(Arc::new(CasProc));
    r.register(Arc::new(MputProc));
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use calc_engine::{Database, EngineConfig, StrategyKind, TxnOutcome};

    fn db(name: &str) -> Database {
        let dir = std::env::temp_dir().join(format!(
            "calc-server-procs-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = EngineConfig::new(StrategyKind::Calc, 1024, 64, dir);
        config.workers = 2;
        Database::open(config, registry()).unwrap()
    }

    #[test]
    fn cas_insert_update_and_mismatch() {
        let db = db("cas");
        // Insert (expect absent).
        let p = params::Writer::new().u64(1).u64(0).bytes(b"v1").finish();
        assert!(matches!(db.execute(CAS, p), TxnOutcome::Committed(_)));
        // Expect-absent against a present key aborts.
        let p = params::Writer::new().u64(1).u64(0).bytes(b"v2").finish();
        assert!(matches!(db.execute(CAS, p), TxnOutcome::Aborted(_)));
        // Matching swap succeeds.
        let p = params::Writer::new()
            .u64(1)
            .u64(1)
            .bytes(b"v1")
            .bytes(b"v2")
            .finish();
        assert!(matches!(db.execute(CAS, p), TxnOutcome::Committed(_)));
        assert_eq!(&*db.get(Key(1)).unwrap(), b"v2");
        // Stale expectation aborts and leaves the value intact.
        let p = params::Writer::new()
            .u64(1)
            .u64(1)
            .bytes(b"v1")
            .bytes(b"v3")
            .finish();
        assert!(matches!(db.execute(CAS, p), TxnOutcome::Aborted(_)));
        assert_eq!(&*db.get(Key(1)).unwrap(), b"v2");
    }

    #[test]
    fn mput_commits_all_keys_in_one_transaction() {
        let db = db("mput");
        let mut w = params::Writer::new().u32(3);
        for k in 10..13u64 {
            w = w.u64(k).bytes(&k.to_le_bytes());
        }
        let TxnOutcome::Committed(seq) = db.execute(MPUT, w.finish()) else {
            panic!("mput aborted");
        };
        for k in 10..13u64 {
            assert_eq!(&*db.get(Key(k)).unwrap(), &k.to_le_bytes());
        }
        // One transaction → one commit seq, one metrics commit.
        assert_eq!(db.metrics().committed(), 1);
        assert!(seq.0 > 0);
    }
}
