//! A small blocking client for the wire protocol — used by the examples,
//! the load generator, and the integration tests.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{read_frame, status, verb, write_frame, Frame, Wire, WireError};

/// What a request can fail with, seen from the client.
#[derive(Debug)]
pub enum KvError {
    /// Transport failure (connection reset, torn frame, …). The request's
    /// outcome is unknown — a write may or may not have committed.
    Io(io::Error),
    /// The transaction aborted (rolled back) with this reason. Nothing
    /// was written.
    Aborted(String),
    /// Server-side failure. For write verbs this means "committed in
    /// memory, durability unconfirmed" — treat the write as possibly lost.
    Server(String),
    /// The server rejected the request as malformed.
    BadRequest(String),
    /// The response payload did not parse.
    Protocol(String),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Io(e) => write!(f, "transport: {e}"),
            KvError::Aborted(r) => write!(f, "aborted: {r}"),
            KvError::Server(m) => write!(f, "server error: {m}"),
            KvError::BadRequest(m) => write!(f, "bad request: {m}"),
            KvError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<io::Error> for KvError {
    fn from(e: io::Error) -> Self {
        KvError::Io(e)
    }
}

impl From<WireError> for KvError {
    fn from(e: WireError) -> Self {
        KvError::Protocol(e.to_string())
    }
}

/// Client-side result.
pub type KvResult<T> = Result<T, KvError>;

/// Stable FNV-style hash from a name to the engine's u64 keyspace (56-bit
/// masked, matching the shell's historical keyspace) — so callers can use
/// string keys over a u64 protocol.
pub fn key_of(name: &str) -> u64 {
    let mut x: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        x ^= b as u64;
        x = x.wrapping_mul(0x0000_0100_0000_01B3);
    }
    x & ((1 << 56) - 1)
}

/// One connection speaking the wire protocol. Requests are synchronous:
/// one frame out, one frame back.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn call(&mut self, op: u8, payload: &[u8]) -> KvResult<(u8, Vec<u8>)> {
        write_frame(&mut self.writer, op, payload)?;
        match read_frame(&mut self.reader)? {
            Some(resp) => Ok(resp),
            None => Err(KvError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ))),
        }
    }

    /// Sends a request and maps non-OK statuses to typed errors.
    fn ok(&mut self, op: u8, payload: &[u8]) -> KvResult<Vec<u8>> {
        let (st, body) = self.call(op, payload)?;
        match st {
            status::OK => Ok(body),
            status::ABORTED => Err(KvError::Aborted(text(body))),
            status::ERR => Err(KvError::Server(text(body))),
            status::BAD_REQUEST => Err(KvError::BadRequest(text(body))),
            other => Err(KvError::Protocol(format!("unknown status {other:#04x}"))),
        }
    }

    /// Point read.
    pub fn get(&mut self, key: u64) -> KvResult<Option<Vec<u8>>> {
        let body = self.ok(verb::GET, &Frame::new().u64(key).finish())?;
        let mut w = Wire::new(&body);
        Ok(match w.u8()? {
            0 => None,
            _ => Some(w.tail().to_vec()),
        })
    }

    /// Durable upsert; `Ok(seq)` means the write survived its batch fsync.
    pub fn put(&mut self, key: u64, value: &[u8]) -> KvResult<u64> {
        let body = self.ok(verb::PUT, &Frame::new().u64(key).tail(value).finish())?;
        Ok(Wire::new(&body).u64()?)
    }

    /// Durable delete; aborts if the key is absent.
    pub fn del(&mut self, key: u64) -> KvResult<u64> {
        let body = self.ok(verb::DEL, &Frame::new().u64(key).finish())?;
        Ok(Wire::new(&body).u64()?)
    }

    /// Durable compare-and-set. `expected = None` expects the key absent
    /// (pure insert); mismatches surface as [`KvError::Aborted`].
    pub fn cas(&mut self, key: u64, expected: Option<&[u8]>, new: &[u8]) -> KvResult<u64> {
        let mut f = Frame::new().u64(key);
        match expected {
            Some(exp) => f = f.u8(1).bytes(exp),
            None => f = f.u8(0),
        }
        let body = self.ok(verb::CAS, &f.tail(new).finish())?;
        Ok(Wire::new(&body).u64()?)
    }

    /// Batch point read; results align with `keys`.
    pub fn mget(&mut self, keys: &[u64]) -> KvResult<Vec<Option<Vec<u8>>>> {
        let mut f = Frame::new().u32(keys.len() as u32);
        for k in keys {
            f = f.u64(*k);
        }
        let body = self.ok(verb::MGET, &f.finish())?;
        let mut w = Wire::new(&body);
        let n = w.u32()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(match w.u8()? {
                0 => None,
                _ => Some(w.bytes()?.to_vec()),
            });
        }
        Ok(out)
    }

    /// Durable multi-key upsert as ONE transaction: one commit seq, one
    /// lock acquisition, one durability wait for all pairs.
    pub fn mput(&mut self, pairs: &[(u64, Vec<u8>)]) -> KvResult<u64> {
        let mut f = Frame::new().u32(pairs.len() as u32);
        for (k, v) in pairs {
            f = f.u64(*k).bytes(v);
        }
        let body = self.ok(verb::MPUT, &f.finish())?;
        Ok(Wire::new(&body).u64()?)
    }

    /// Engine health text (`key=value` lines): commit batches, average
    /// batch size, fsync p99, connection counts, …
    pub fn health(&mut self) -> KvResult<String> {
        Ok(text(self.ok(verb::HEALTH, &[])?))
    }

    /// [`Client::health`] parsed into `(key, value)` pairs.
    pub fn health_fields(&mut self) -> KvResult<std::collections::BTreeMap<String, String>> {
        Ok(self
            .health()?
            .lines()
            .filter_map(|l| {
                let (k, v) = l.split_once('=')?;
                Some((k.to_string(), v.to_string()))
            })
            .collect())
    }

    /// Triggers a checkpoint cycle and returns its stats line.
    pub fn checkpoint(&mut self) -> KvResult<String> {
        Ok(text(self.ok(verb::CHECKPOINT, &[])?))
    }

    /// Checkpoint-chain and retention stats text.
    pub fn stats(&mut self) -> KvResult<String> {
        Ok(text(self.ok(verb::STATS, &[])?))
    }
}

fn text(body: Vec<u8>) -> String {
    String::from_utf8_lossy(&body).into_owned()
}
