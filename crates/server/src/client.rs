//! A small blocking client for the wire protocol — used by the examples,
//! the load generator, and the integration tests.
//!
//! Hardening ([`ClientConfig`]): connect/read/write socket timeouts, and
//! optional seeded-jitter retry ([`calc_common::Backoff`]) on transient
//! failures. The retry matrix is deliberately conservative:
//!
//! * [`KvError::Busy`] (admission shed) is retried for **every** verb —
//!   the server rejects *before* executing anything, so even a CAS retry
//!   is unambiguous.
//! * [`KvError::Io`] (transport failure) is ambiguous — the request may
//!   or may not have executed — so only *read* verbs reconnect and
//!   retry. Write verbs, and above all non-idempotent CAS, surface the
//!   error to the caller, who alone knows how to probe the outcome.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use calc_common::Backoff;

use crate::protocol::{read_frame, status, verb, write_frame, Frame, Wire, WireError};

/// What a request can fail with, seen from the client.
#[derive(Debug)]
pub enum KvError {
    /// Transport failure (connection reset, torn frame, …). The request's
    /// outcome is unknown — a write may or may not have committed.
    Io(io::Error),
    /// The transaction aborted (rolled back) with this reason. Nothing
    /// was written.
    Aborted(String),
    /// Server-side failure. For write verbs this means "committed in
    /// memory, durability unconfirmed" — treat the write as possibly lost.
    Server(String),
    /// The server rejected the request as malformed.
    BadRequest(String),
    /// Admission control shed the request (or connection) before doing
    /// any work — always safe to retry, even a CAS.
    Busy(String),
    /// The response payload did not parse.
    Protocol(String),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Io(e) => write!(f, "transport: {e}"),
            KvError::Aborted(r) => write!(f, "aborted: {r}"),
            KvError::Server(m) => write!(f, "server error: {m}"),
            KvError::BadRequest(m) => write!(f, "bad request: {m}"),
            KvError::Busy(m) => write!(f, "busy (shed): {m}"),
            KvError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<io::Error> for KvError {
    fn from(e: io::Error) -> Self {
        KvError::Io(e)
    }
}

impl From<WireError> for KvError {
    fn from(e: WireError) -> Self {
        KvError::Protocol(e.to_string())
    }
}

/// Client-side result.
pub type KvResult<T> = Result<T, KvError>;

/// Stable FNV-style hash from a name to the engine's u64 keyspace (56-bit
/// masked, matching the shell's historical keyspace) — so callers can use
/// string keys over a u64 protocol.
pub fn key_of(name: &str) -> u64 {
    let mut x: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        x ^= b as u64;
        x = x.wrapping_mul(0x0000_0100_0000_01B3);
    }
    x & ((1 << 56) - 1)
}

/// Socket-timeout and retry knobs for a [`Client`]. The default is
/// timeouts on, retries **off** — existing callers see identical
/// behaviour (one attempt, typed errors) plus protection from a wedged
/// server socket.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-address TCP connect timeout (`None` = OS default).
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout for responses (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout for requests (`None` = block forever).
    pub write_timeout: Option<Duration>,
    /// Extra attempts after a retryable failure (see the module docs for
    /// the retry matrix). `0` disables retry entirely.
    pub retries: u32,
    /// Backoff base delay between retries.
    pub retry_base: Duration,
    /// Backoff delay cap between retries.
    pub retry_cap: Duration,
    /// Seed for the deterministic retry jitter.
    pub retry_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(30)),
            retries: 0,
            retry_base: Duration::from_millis(5),
            retry_cap: Duration::from_millis(250),
            retry_seed: 0xC11E_57EE,
        }
    }
}

/// One connection speaking the wire protocol. Requests are synchronous:
/// one frame out, one frame back.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Resolved addresses, kept for reconnect on read-verb Io retry.
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    backoff: Backoff,
}

impl Client {
    /// Connects to a running server with [`ClientConfig::default`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeout/retry knobs. Transient connect
    /// errors are retried `config.retries` times under seeded backoff.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut backoff = Backoff::new(config.retry_base, config.retry_cap, config.retry_seed);
        let mut attempt = 0u32;
        let stream = loop {
            match open_stream(&addrs, &config) {
                Ok(s) => break s,
                Err(e) if attempt < config.retries => {
                    attempt += 1;
                    std::thread::sleep(backoff.next_delay());
                    let _ = e;
                }
                Err(e) => return Err(e),
            }
        };
        backoff.reset();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            addrs,
            config,
            backoff,
        })
    }

    /// Drops the wedged/broken socket and dials a fresh one (same
    /// resolved addresses, same timeouts).
    fn reconnect(&mut self) -> io::Result<()> {
        let stream = open_stream(&self.addrs, &self.config)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = BufWriter::new(stream);
        Ok(())
    }

    fn call(&mut self, op: u8, payload: &[u8]) -> KvResult<(u8, Vec<u8>)> {
        write_frame(&mut self.writer, op, payload)?;
        match read_frame(&mut self.reader)? {
            Some(resp) => Ok(resp),
            None => Err(KvError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ))),
        }
    }

    /// One attempt: sends a request and maps non-OK statuses to typed
    /// errors.
    fn ok_once(&mut self, op: u8, payload: &[u8]) -> KvResult<Vec<u8>> {
        let (st, body) = self.call(op, payload)?;
        match st {
            status::OK => Ok(body),
            status::ABORTED => Err(KvError::Aborted(text(body))),
            status::ERR => Err(KvError::Server(text(body))),
            status::BAD_REQUEST => Err(KvError::BadRequest(text(body))),
            status::BUSY => Err(KvError::Busy(text(body))),
            other => Err(KvError::Protocol(format!("unknown status {other:#04x}"))),
        }
    }

    /// [`Client::ok_once`] under the retry matrix: `Busy` retried for all
    /// verbs (pre-execution shed, unambiguous), `Io` retried — with a
    /// reconnect — only when `retry_io` says the verb is idempotent.
    fn ok(&mut self, op: u8, payload: &[u8], retry_io: bool) -> KvResult<Vec<u8>> {
        let mut attempt = 0u32;
        loop {
            match self.ok_once(op, payload) {
                Err(KvError::Busy(m)) => {
                    if attempt >= self.config.retries {
                        return Err(KvError::Busy(m));
                    }
                    attempt += 1;
                    let delay = self.backoff.next_delay();
                    std::thread::sleep(delay);
                }
                Err(KvError::Io(e)) if retry_io => {
                    if attempt >= self.config.retries {
                        return Err(KvError::Io(e));
                    }
                    attempt += 1;
                    let delay = self.backoff.next_delay();
                    std::thread::sleep(delay);
                    if let Err(re) = self.reconnect() {
                        return Err(KvError::Io(re));
                    }
                }
                other => {
                    if attempt > 0 {
                        self.backoff.reset();
                    }
                    return other;
                }
            }
        }
    }

    /// Point read.
    pub fn get(&mut self, key: u64) -> KvResult<Option<Vec<u8>>> {
        let body = self.ok(verb::GET, &Frame::new().u64(key).finish(), true)?;
        let mut w = Wire::new(&body);
        Ok(match w.u8()? {
            0 => None,
            _ => Some(w.tail().to_vec()),
        })
    }

    /// Durable upsert; `Ok(seq)` means the write survived its batch fsync.
    pub fn put(&mut self, key: u64, value: &[u8]) -> KvResult<u64> {
        let body = self.ok(verb::PUT, &Frame::new().u64(key).tail(value).finish(), false)?;
        Ok(Wire::new(&body).u64()?)
    }

    /// Durable delete; aborts if the key is absent.
    pub fn del(&mut self, key: u64) -> KvResult<u64> {
        let body = self.ok(verb::DEL, &Frame::new().u64(key).finish(), false)?;
        Ok(Wire::new(&body).u64()?)
    }

    /// Durable compare-and-set. `expected = None` expects the key absent
    /// (pure insert); mismatches surface as [`KvError::Aborted`].
    pub fn cas(&mut self, key: u64, expected: Option<&[u8]>, new: &[u8]) -> KvResult<u64> {
        let mut f = Frame::new().u64(key);
        match expected {
            Some(exp) => f = f.u8(1).bytes(exp),
            None => f = f.u8(0),
        }
        let body = self.ok(verb::CAS, &f.tail(new).finish(), false)?;
        Ok(Wire::new(&body).u64()?)
    }

    /// Batch point read; results align with `keys`.
    pub fn mget(&mut self, keys: &[u64]) -> KvResult<Vec<Option<Vec<u8>>>> {
        let mut f = Frame::new().u32(keys.len() as u32);
        for k in keys {
            f = f.u64(*k);
        }
        let body = self.ok(verb::MGET, &f.finish(), true)?;
        let mut w = Wire::new(&body);
        let n = w.u32()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(match w.u8()? {
                0 => None,
                _ => Some(w.bytes()?.to_vec()),
            });
        }
        Ok(out)
    }

    /// Durable multi-key upsert as ONE transaction: one commit seq, one
    /// lock acquisition, one durability wait for all pairs.
    pub fn mput(&mut self, pairs: &[(u64, Vec<u8>)]) -> KvResult<u64> {
        let mut f = Frame::new().u32(pairs.len() as u32);
        for (k, v) in pairs {
            f = f.u64(*k).bytes(v);
        }
        let body = self.ok(verb::MPUT, &f.finish(), false)?;
        Ok(Wire::new(&body).u64()?)
    }

    /// Engine health text (`key=value` lines): commit batches, average
    /// batch size, fsync p99, connection counts, …
    pub fn health(&mut self) -> KvResult<String> {
        Ok(text(self.ok(verb::HEALTH, &[], true)?))
    }

    /// [`Client::health`] parsed into `(key, value)` pairs.
    pub fn health_fields(&mut self) -> KvResult<std::collections::BTreeMap<String, String>> {
        Ok(self
            .health()?
            .lines()
            .filter_map(|l| {
                let (k, v) = l.split_once('=')?;
                Some((k.to_string(), v.to_string()))
            })
            .collect())
    }

    /// Triggers a checkpoint cycle and returns its stats line.
    pub fn checkpoint(&mut self) -> KvResult<String> {
        Ok(text(self.ok(verb::CHECKPOINT, &[], false)?))
    }

    /// Checkpoint-chain and retention stats text.
    pub fn stats(&mut self) -> KvResult<String> {
        Ok(text(self.ok(verb::STATS, &[], true)?))
    }
}

fn text(body: Vec<u8>) -> String {
    String::from_utf8_lossy(&body).into_owned()
}

/// Dials the first address that answers, applying the configured connect
/// and socket timeouts.
fn open_stream(addrs: &[SocketAddr], config: &ClientConfig) -> io::Result<TcpStream> {
    let mut last: Option<io::Error> = None;
    for a in addrs {
        let attempt = match config.connect_timeout {
            Some(t) => TcpStream::connect_timeout(a, t),
            None => TcpStream::connect(a),
        };
        match attempt {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                stream.set_read_timeout(config.read_timeout)?;
                stream.set_write_timeout(config.write_timeout)?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "no addresses to connect to")
    }))
}
