//! The `calc-server` binary: recover-then-serve over a durable directory.
//!
//! ```sh
//! calc-server --dir /var/lib/calc [--addr 127.0.0.1:0] [--port-file p]
//! ```
//!
//! Boot recovers any existing state under `--dir` (checkpoint chain +
//! command-log replay), binds the address (port 0 picks an ephemeral
//! port), optionally writes the bound port to `--port-file` (how scripted
//! harnesses and the kill-9 smoke find it), and serves until killed.
//! Every write acknowledged `OK` on the wire has been fsynced with its
//! group-commit batch, so `kill -9` at any moment loses no acknowledged
//! write — the tier-6 kill-9 smoke (`cargo verify-server`) proves
//! exactly that against this binary.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: calc-server --dir DIR [--addr HOST:PORT] [--port-file PATH]\n\
         \x20                 [--workers N] [--window-us N] [--max-batch N]\n\
         \x20                 [--checkpoint-every-ms N] [--max-connections N]\n\
         \x20                 [--max-inflight N] [--queue-deadline-ms N]\n\
         \x20                 [--frame-timeout-ms N] [--capacity-tps N]\n\
         \x20                 [--no-adaptive-pacing]\n\
         \x20                 [--executor-mode pool|shard_owned] [--shards-per-worker N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<std::path::PathBuf> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut port_file: Option<std::path::PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut window_us: Option<u64> = None;
    let mut max_batch: Option<usize> = None;
    let mut checkpoint_every_ms: Option<u64> = None;
    let mut server_config = calc_server::ServerConfig::default();
    let mut capacity_tps: Option<u64> = None;
    let mut adaptive_pacing = true;
    let mut executor_mode: Option<calc_engine::config::ExecutorMode> = None;
    let mut shards_per_worker: Option<usize> = None;

    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--dir" => dir = Some(value().into()),
            "--addr" => addr = value(),
            "--port-file" => port_file = Some(value().into()),
            "--workers" => workers = value().parse().ok(),
            "--window-us" => window_us = value().parse().ok(),
            "--max-batch" => max_batch = value().parse().ok(),
            "--checkpoint-every-ms" => checkpoint_every_ms = value().parse().ok(),
            "--max-connections" => {
                server_config.max_connections = value().parse().unwrap_or_else(|_| usage())
            }
            "--max-inflight" => {
                server_config.max_inflight = value().parse().unwrap_or_else(|_| usage())
            }
            "--queue-deadline-ms" => {
                server_config.queue_deadline =
                    Duration::from_millis(value().parse().unwrap_or_else(|_| usage()))
            }
            "--frame-timeout-ms" => {
                server_config.frame_timeout =
                    Duration::from_millis(value().parse().unwrap_or_else(|_| usage()))
            }
            "--capacity-tps" => capacity_tps = value().parse().ok(),
            "--no-adaptive-pacing" => adaptive_pacing = false,
            "--executor-mode" => {
                executor_mode = Some(
                    calc_engine::config::ExecutorMode::parse(&value())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--shards-per-worker" => {
                shards_per_worker = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    std::fs::create_dir_all(&dir).expect("create --dir");

    let db = calc_server::open_or_recover(&dir, |config| {
        if let Some(w) = workers {
            config.workers = w.max(1);
        }
        if let Some(us) = window_us {
            config.group_commit_window = Duration::from_micros(us);
        }
        if let Some(b) = max_batch {
            config.group_commit_max_batch = b.max(1);
        }
        config.checkpoint_interval = checkpoint_every_ms.map(Duration::from_millis);
        config.adaptive_pacing = adaptive_pacing;
        if let Some(tps) = capacity_tps {
            config.load_capacity_tps = tps;
        }
        // Flag wins over the EXEC_MODE environment default.
        if let Some(mode) = executor_mode {
            config.executor_mode = mode;
        }
        if let Some(spw) = shards_per_worker {
            config.shards_per_worker = spw.max(1);
        }
    })
    .expect("open or recover engine");

    let server = calc_server::Server::start_with(Arc::new(db), &addr, server_config)
        .expect("bind server");
    let bound = server.local_addr();
    if let Some(path) = port_file {
        // Write-then-rename so a watcher never reads a torn port number.
        let tmp = path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp).expect("create port file");
        writeln!(f, "{}", bound.port()).expect("write port file");
        f.sync_all().expect("sync port file");
        std::fs::rename(&tmp, &path).expect("publish port file");
    }
    println!("calc-server listening on {bound}");

    // Serve until killed. The kill-9 smoke depends on acked writes being
    // durable at any instant, which the ack-after-fsync path guarantees.
    loop {
        std::thread::park();
    }
}
