//! Two-node crash-simulation: a primary and a warm standby over one
//! shared fault-injecting filesystem, with a promotion oracle.
//!
//! [`run_failover`] extends [`crate::driver::run_sim`]'s single-node
//! experiment to the replication topology `calc-replica` implements:
//!
//! 1. A primary runs the seeded serial workload — segmented command log,
//!    periodic checkpoints, optional retention truncation — over a
//!    [`SimVfs`], with one fault armed (or a power cut at the end).
//! 2. A [`Standby`] shares the same filesystem, bootstraps from whatever
//!    checkpoint chain exists when it opens, and polls the log tail
//!    every [`FailoverSpec::poll_every`] transactions. A large
//!    `poll_every` combined with aggressive retention makes the primary
//!    truncate segments out from under the standby's cursor — the
//!    tailer×retention race — while a small one keeps the standby hot.
//! 3. The primary crashes (fault or power cut). The disk reboots to its
//!    survivable state ([`SimVfs::recover_view`]); the standby — a
//!    separate node whose memory survives — drains the remaining trusted
//!    log bytes and [`Standby::promote`]s.
//! 4. The oracle: the promoted state must equal the serial reference
//!    model at a commit-consistent prefix at least the durable floor —
//!    zero lost committed writes the primary honestly promised, no
//!    resurrected deletes (the exact-state compare catches both), and
//!    the promotion itself must never error on a legal crash state.
//!
//! Everything is a pure function of `(spec.seed, spec)`; violations
//! reprint the spec for replay.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use calc_common::rng::SplitMix;
use calc_common::simfs::{DirCrashMode, FaultSpec, OpCounts, SimVfs};
use calc_common::types::{Key, TxnId};
use calc_common::vfs::Vfs;
use calc_common::Backoff;
use calc_core::file::CheckpointKind;
use calc_core::manifest::CheckpointDir;
use calc_core::strategy::{CheckpointStrategy, NoopEnv};
use calc_core::throttle::Throttle;
use calc_core::Codec;
use calc_engine::{classify, ErrorClass, StrategyKind};
use calc_recovery::{truncate_segments_below, SegmentedLogWriter};
use calc_replica::{Standby, StandbyConfig};
use calc_storage::dual::StoreConfig;
use calc_txn::commitlog::{CommitLog, CommitRecord};
use calc_txn::proc::TxnOps;

use crate::model::{gen_op, model_at, Op};
use crate::procs::registry;

const WORKLOAD_SALT: u64 = 0x5e11_ab1e_0b5e_55ed;
const BACKOFF_SALT: u64 = 0xb0ff_b0ff_b0ff_b0ff;

/// Specification of one two-node failover experiment.
#[derive(Clone, Debug)]
pub struct FailoverSpec {
    /// Seed driving workload generation and every crash-time draw.
    pub seed: u64,
    /// Strategy under test (primary and standby run the same one).
    pub kind: StrategyKind,
    /// Fault to arm, if any. `None` = clean run ending in a power cut.
    pub fault: Option<FaultSpec>,
    /// Transactions to attempt.
    pub txns: u64,
    /// Checkpoint after every N transactions.
    pub checkpoint_every: u64,
    /// Group-commit the command log after every N transactions.
    pub sync_every: u64,
    /// The standby polls the log tail after every N transactions.
    pub poll_every: u64,
    /// How pending directory entries behave at crash time.
    pub dir_crash_mode: DirCrashMode,
    /// Command-log segment rotation threshold (segmentation is mandatory
    /// for a standby — the tailer speaks the segmented format).
    pub log_segment_bytes: u64,
    /// After each honestly-durable checkpoint, truncate sealed segments
    /// below the oldest surviving full's watermark.
    pub truncate_log: bool,
    /// Checkpoint-part codec. `None` reads `CKPT_CODEC` from the
    /// environment (default `none`).
    pub codec: Option<Codec>,
    /// Part files (and capture/load threads) per checkpoint. `None`
    /// reads `CKPT_THREADS` (default 1).
    pub ckpt_threads: Option<usize>,
    /// Retries per checkpoint cycle before running degraded.
    pub ckpt_retries: u32,
}

impl FailoverSpec {
    /// The standard small experiment: 48 transactions, checkpoint every
    /// 12, sync every 8, standby polling every 4, small segments with
    /// retention on.
    pub fn smoke(kind: StrategyKind, seed: u64) -> Self {
        FailoverSpec {
            seed,
            kind,
            fault: None,
            txns: 48,
            checkpoint_every: 12,
            sync_every: 8,
            poll_every: 4,
            dir_crash_mode: DirCrashMode::Seeded,
            log_segment_bytes: 512,
            truncate_log: true,
            codec: None,
            ckpt_threads: None,
            ckpt_retries: 3,
        }
    }

    /// The same experiment with one armed fault.
    pub fn with_fault(kind: StrategyKind, seed: u64, fault: FaultSpec) -> Self {
        FailoverSpec {
            fault: Some(fault),
            ..Self::smoke(kind, seed)
        }
    }
}

/// A promotion-oracle violation; the message embeds the full spec.
#[derive(Debug)]
pub struct FailoverViolation {
    /// The spec that produced the violation.
    pub spec: FailoverSpec,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for FailoverViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "failover oracle violation [seed={:#x} kind={} fault={:?} mode={:?} poll_every={}]: {}",
            self.spec.seed,
            self.spec.kind,
            self.spec.fault,
            self.spec.dir_crash_mode,
            self.spec.poll_every,
            self.detail
        )
    }
}

impl std::error::Error for FailoverViolation {}

/// What one failover experiment did.
#[derive(Clone, Debug)]
pub struct FailoverReport {
    /// Transactions that committed on the primary before the crash.
    pub committed: u64,
    /// Whether the armed fault fired mid-run (vs. the power cut).
    pub crashed_mid_run: bool,
    /// The commit-consistent prefix the promoted standby serves.
    pub promoted_prefix: u64,
    /// The durability floor the primary honestly established.
    pub durable_floor: u64,
    /// IO operation counts at crash time — the sweep domain.
    pub counts: OpCounts,
    /// Standby polls that ran during the live phase.
    pub standby_polls: u64,
    /// Times the live tailer rebuilt state from the covering checkpoint
    /// because retention outran its cursor.
    pub rebootstraps: u64,
    /// Promotion rebuilt from a checkpoint chain that had run ahead of
    /// the tailed log (commits existing only in the chain).
    pub promote_rebuilt: bool,
    /// Times the tailer lost its cursor segment to retention at all.
    pub lost_prefix_events: u64,
    /// Commits the standby applied from the log over its lifetime.
    pub commits_applied: u64,
    /// The standby was only opened after the crash (the fault fired
    /// before the topology came up; promotion degenerates to bootstrap).
    pub late_standby: bool,
    /// True when the strategy was refused as not-transaction-consistent
    /// (expected for Fuzzy: its checkpoints cannot seed a standby).
    pub refused_not_tc: bool,
}

/// Serial execution bridge routing procedure ops to the strategy.
struct Bridge<'a> {
    strategy: &'a dyn CheckpointStrategy,
    token: calc_core::strategy::TxnToken,
    failed: Option<String>,
}

impl TxnOps for Bridge<'_> {
    fn get(&mut self, key: Key) -> Option<calc_common::types::Value> {
        self.strategy.get(key)
    }
    fn put(&mut self, key: Key, value: &[u8]) {
        if let Err(e) = self.strategy.apply_write(&mut self.token, key, value) {
            self.failed = Some(format!("put {key}: {e}"));
        }
    }
    fn insert(&mut self, key: Key, value: &[u8]) -> bool {
        match self.strategy.apply_insert(&mut self.token, key, value) {
            Ok(ok) => ok,
            Err(e) => {
                self.failed = Some(format!("insert {key}: {e}"));
                false
            }
        }
    }
    fn delete(&mut self, key: Key) -> bool {
        self.strategy.apply_delete(&mut self.token, key).is_ok()
    }
}

fn violation(spec: &FailoverSpec, detail: impl Into<String>) -> FailoverViolation {
    FailoverViolation {
        spec: spec.clone(),
        detail: detail.into(),
    }
}

fn store_config() -> StoreConfig {
    StoreConfig::for_records(1024, 64)
}

fn ckpt_threads_from_env() -> usize {
    std::env::var("CKPT_THREADS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

fn standby_config(spec: &FailoverSpec, vfs: Arc<dyn Vfs>) -> StandbyConfig {
    let mut cfg = StandbyConfig::new(
        spec.kind,
        store_config(),
        PathBuf::from("/sim/ckpts"),
        PathBuf::from("/sim/cmdlog"),
    );
    cfg.vfs = vfs;
    cfg.checkpoint_threads = spec.ckpt_threads.unwrap_or_else(ckpt_threads_from_env);
    cfg
}

/// Runs one failover experiment end to end. `Ok` means the promotion
/// oracle held.
#[allow(clippy::result_large_err)] // violations are terminal and rare
pub fn run_failover(spec: &FailoverSpec) -> Result<FailoverReport, FailoverViolation> {
    let vfs = match spec.fault {
        Some(f) => SimVfs::with_fault(spec.seed, f),
        None => SimVfs::new(spec.seed),
    };
    vfs.set_dir_crash_mode(spec.dir_crash_mode);
    let vfs_dyn: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let ckpt_dir = PathBuf::from("/sim/ckpts");
    let log_seg_dir = PathBuf::from("/sim/cmdlog");
    let codec = spec
        .codec
        .unwrap_or_else(|| Codec::from_env().expect("CKPT_CODEC names a known codec"));

    let mut committed: Vec<(u64, Op)> = Vec::new();
    let mut durable_floor = 0u64;
    let mut standby: Option<Standby> = None;
    let mut standby_polls = 0u64;
    let reg = registry();

    // ---- Phase 1: live run on the primary, standby tailing alongside.
    'live: {
        let dir = match CheckpointDir::open_with_vfs(
            &ckpt_dir,
            Arc::new(Throttle::unlimited()),
            vfs_dyn.clone(),
        ) {
            Ok(d) => d,
            Err(_) => break 'live,
        };
        dir.set_checkpoint_threads(spec.ckpt_threads.unwrap_or_else(ckpt_threads_from_env));
        dir.set_codec(codec);
        let mut cmdlog =
            match SegmentedLogWriter::create(vfs_dyn.clone(), &log_seg_dir, spec.log_segment_bytes)
            {
                Ok(w) => w,
                Err(_) => break 'live,
            };
        let log = Arc::new(CommitLog::new(false));
        let strategy = spec.kind.build(store_config(), log.clone());
        if spec.kind.is_partial() && strategy.write_base_checkpoint(&dir).is_err() {
            break 'live;
        }

        // The standby comes up once the primary's durable footprint
        // exists. A refusal here is the Fuzzy oracle; an IO error means
        // the fault already fired (late standby, handled after reboot).
        match Standby::open(standby_config(spec, vfs_dyn.clone()), registry()) {
            Ok(s) => standby = Some(s),
            Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                return Ok(FailoverReport {
                    committed: 0,
                    crashed_mid_run: false,
                    promoted_prefix: 0,
                    durable_floor: 0,
                    counts: vfs.counts(),
                    standby_polls: 0,
                    rebootstraps: 0,
                    promote_rebuilt: false,
                    lost_prefix_events: 0,
                    commits_applied: 0,
                    late_standby: false,
                    refused_not_tc: true,
                })
            }
            Err(_) => {}
        }
        if let Some(s) = standby.as_mut() {
            // Anchor poll: pin the cursor to the current lowest segment
            // so later retention genuinely races it.
            standby_polls += 1;
            let _ = s.poll();
        }

        let mut rng = SplitMix::new(spec.seed ^ WORKLOAD_SALT);
        let mut backoff = Backoff::new(
            Duration::from_millis(1),
            Duration::from_millis(64),
            spec.seed ^ BACKOFF_SALT,
        );

        for i in 0..spec.txns {
            let op = gen_op(&mut rng);
            let (proc_id, params) = op.encode();
            let procedure = reg.get(proc_id).expect("sim procs registered");
            let mut bridge = Bridge {
                strategy: strategy.as_ref(),
                token: strategy.txn_begin(),
                failed: None,
            };
            procedure
                .run(&params, &mut bridge)
                .expect("sim procs never abort");
            assert!(bridge.failed.is_none(), "sim op failed: {:?}", bridge.failed);
            let mut token = bridge.token;
            let (seq, stamp) = log.append_commit(TxnId(i), proc_id, params.clone());
            let rec = CommitRecord {
                seq,
                txn: TxnId(i),
                proc: proc_id,
                params,
            };
            // Recorded as committed *before* the append: the op already
            // executed against the primary's state, and whether it turns
            // durable is decided by how many of its log bytes survive the
            // crash — prefix semantics cover both outcomes. Pushing after
            // a successful append would make a torn-but-fully-surviving
            // final record (executed, written, never acked) read as a
            // resurrected write at the oracle.
            committed.push((seq.0, op));
            if cmdlog.append(&rec).is_err() {
                strategy.txn_end(token);
                break 'live;
            }
            strategy.on_commit(&mut token, seq, stamp);
            strategy.txn_end(token);

            if (i + 1) % spec.sync_every == 0 {
                match cmdlog.sync() {
                    Ok(()) if vfs.fsyncs_dropped() == 0 => durable_floor = seq.0,
                    Ok(()) => {}
                    Err(_) => break 'live,
                }
            }
            // The standby polls *before* the primary's checkpoint-and-
            // truncate step: a continuously-polling standby observes a
            // rotation before retention can remove the sealed segment its
            // cursor sat in, so a hot standby deterministically rides
            // through retention. Laggy standbys (large poll_every) still
            // cross the truncation race at arbitrary points.
            if (i + 1) % spec.poll_every == 0 {
                if let Some(s) = standby.as_mut() {
                    // A poll error during the live phase is transient
                    // from the standby's view (the cursor held); the
                    // next poll retries. The crash itself surfaces as
                    // primary-side errors above.
                    standby_polls += 1;
                    let _ = s.poll();
                }
            }
            if (i + 1) % spec.checkpoint_every == 0 {
                backoff.reset();
                let mut attempts = 0u32;
                loop {
                    match strategy.checkpoint(&NoopEnv, &dir) {
                        Ok(stats) => {
                            if vfs.fsyncs_dropped() == 0 {
                                durable_floor = durable_floor.max(stats.watermark.0);
                            }
                            if spec.truncate_log && vfs.fsyncs_dropped() == 0 {
                                let floor = dir.scan().ok().and_then(|metas| {
                                    metas
                                        .iter()
                                        .filter(|m| m.kind == CheckpointKind::Full)
                                        .map(|m| m.watermark)
                                        .min()
                                });
                                if let Some(floor) = floor {
                                    let _ = truncate_segments_below(
                                        vfs_dyn.as_ref(),
                                        &log_seg_dir,
                                        floor,
                                    );
                                }
                            }
                            break;
                        }
                        Err(e) => match classify(&e) {
                            ErrorClass::Fatal => break 'live,
                            _ if attempts < spec.ckpt_retries => {
                                attempts += 1;
                                let _delay = backoff.next_delay();
                            }
                            _ => break,
                        },
                    }
                }
            }
        }
        if cmdlog.sync().is_ok() && vfs.fsyncs_dropped() == 0 {
            if let Some((seq, _)) = committed.last() {
                durable_floor = durable_floor.max(*seq);
            }
        }
    }

    let crashed_mid_run = vfs.crashed();
    if !crashed_mid_run {
        vfs.force_crash();
    }
    let counts = vfs.counts();

    // ---- Phase 2: the disk reboots; the standby (whose memory survives
    // the primary's crash) drains the surviving trusted log and promotes.
    vfs.recover_view();
    let late_standby = standby.is_none();
    let standby = match standby {
        Some(s) => s,
        // The fault fired before the standby came up: it starts now,
        // against the post-crash durable state — promotion degenerates
        // to a bootstrap, which must still satisfy the oracle.
        None => Standby::open(standby_config(spec, vfs_dyn.clone()), registry())
            .map_err(|e| violation(spec, format!("opening standby after crash: {e}")))?,
    };
    let promoted = standby
        .promote()
        .map_err(|e| violation(spec, format!("promotion failed on a legal crash state: {e}")))?;
    let promoted_prefix = promoted.watermark();

    // ---- Phase 3: the promotion oracle.
    if promoted_prefix < durable_floor {
        return Err(violation(
            spec,
            format!(
                "durability broken across failover: promoted prefix {promoted_prefix} < durable \
                 floor {durable_floor} (a commit the primary promised durable was lost)"
            ),
        ));
    }
    let expected = model_at(&committed, promoted_prefix);
    check_state_equals(spec, promoted.strategy().as_ref(), &expected, promoted_prefix)?;

    Ok(FailoverReport {
        committed: committed.len() as u64,
        crashed_mid_run,
        promoted_prefix,
        durable_floor,
        counts,
        standby_polls,
        rebootstraps: promoted.rebootstraps(),
        promote_rebuilt: promoted.promote_rebuilt(),
        lost_prefix_events: promoted.lost_prefix_events(),
        commits_applied: promoted.commits_applied(),
        late_standby,
        refused_not_tc: false,
    })
}

#[allow(clippy::result_large_err)]
fn check_state_equals(
    spec: &FailoverSpec,
    strategy: &dyn CheckpointStrategy,
    expected: &std::collections::BTreeMap<u64, Vec<u8>>,
    prefix: u64,
) -> Result<(), FailoverViolation> {
    if strategy.record_count() != expected.len() {
        return Err(violation(
            spec,
            format!(
                "promoted record count {} != model count {} at prefix {prefix}",
                strategy.record_count(),
                expected.len()
            ),
        ));
    }
    for (k, v) in expected {
        match strategy.get(Key(*k)) {
            Some(got) if got[..] == v[..] => {}
            Some(got) => {
                return Err(violation(
                    spec,
                    format!(
                        "key {k} diverged at prefix {prefix}: promoted {} bytes, model {} bytes",
                        got.len(),
                        v.len()
                    ),
                ))
            }
            None => {
                return Err(violation(
                    spec,
                    format!("key {k} missing after promotion at prefix {prefix}"),
                ))
            }
        }
    }
    Ok(())
}
