//! The serial reference model and seeded workload generator.
//!
//! The driver executes transactions one at a time, so the commit order
//! equals the submission order and the reference model is exact: the
//! database state after commit sequence `S` is the fold of every
//! committed operation with `seq <= S` over an empty map. That fold is
//! [`model_at`]; the oracle compares a recovered store against it.

use std::collections::BTreeMap;
use std::sync::Arc;

use calc_common::rng::SplitMix;
use calc_txn::proc::{params, ProcId};

use crate::procs::{DELETE, SET};

/// One workload operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Upsert `key` to `value`.
    Set(u64, Vec<u8>),
    /// Delete `key` (no-op when absent).
    Delete(u64),
}

impl Op {
    /// The procedure id + encoded parameters executing this operation.
    pub fn encode(&self) -> (ProcId, Arc<[u8]>) {
        match self {
            Op::Set(k, v) => (SET, params::Writer::new().u64(*k).bytes(v).finish()),
            Op::Delete(k) => (DELETE, params::Writer::new().u64(*k).finish()),
        }
    }
}

/// Number of distinct keys the workload touches. Small on purpose: a
/// dense key space maximizes overwrite/delete/re-insert interleavings,
/// which is where checkpoint consistency bugs live.
pub const KEY_SPACE: u64 = 24;

/// Draws the next operation: 3:1 set:delete, values up to 40 bytes.
pub fn gen_op(rng: &mut SplitMix) -> Op {
    if rng.next_below(4) < 3 {
        let k = rng.next_below(KEY_SPACE);
        let len = rng.next_below(40) as usize;
        let v = (0..len).map(|_| rng.next_u64() as u8).collect();
        Op::Set(k, v)
    } else {
        Op::Delete(rng.next_below(KEY_SPACE))
    }
}

/// Folds every committed `(seq, op)` with `seq <= upto` into the state
/// the database must hold at that commit-consistent point.
pub fn model_at(committed: &[(u64, Op)], upto: u64) -> BTreeMap<u64, Vec<u8>> {
    let mut state = BTreeMap::new();
    for (seq, op) in committed {
        if *seq > upto {
            break;
        }
        match op {
            Op::Set(k, v) => {
                state.insert(*k, v.clone());
            }
            Op::Delete(k) => {
                state.remove(k);
            }
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_respects_prefix() {
        let committed = vec![
            (1, Op::Set(5, b"a".to_vec())),
            (2, Op::Set(6, b"b".to_vec())),
            (3, Op::Delete(5)),
            (4, Op::Set(5, b"c".to_vec())),
        ];
        assert_eq!(model_at(&committed, 0).len(), 0);
        assert_eq!(model_at(&committed, 2).len(), 2);
        assert!(!model_at(&committed, 3).contains_key(&5));
        assert_eq!(model_at(&committed, 4).get(&5).unwrap(), b"c");
        // A prefix bound between commit seqs (e.g. a phase-transition
        // token's sequence) is fine: it includes everything at or below.
        assert_eq!(model_at(&committed, 100), model_at(&committed, 4));
    }

    #[test]
    fn gen_is_deterministic() {
        let mut a = SplitMix::new(9);
        let mut b = SplitMix::new(9);
        for _ in 0..50 {
            assert_eq!(gen_op(&mut a), gen_op(&mut b));
        }
    }
}
