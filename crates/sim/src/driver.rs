//! The crash-simulation driver and recovery oracle.
//!
//! One [`run_sim`] call is one complete crash experiment:
//!
//! 1. Build a [`SimVfs`] from the seed, optionally arming one fault.
//! 2. Run a seeded workload serially against the chosen strategy,
//!    appending every commit to a durable command log and checkpointing
//!    on a fixed cadence. Serial execution makes the commit order equal
//!    the submission order, so the reference model is exact.
//! 3. Crash — either because the armed fault fired mid-run, or by
//!    cutting power at the end of the workload.
//! 4. Reboot the simulated disk ([`SimVfs::recover_view`]), run real
//!    recovery (`calc_recovery::recover`), and check the oracle:
//!    the recovered store must equal the reference model at some
//!    commit-consistent prefix `S`, and `S` must be at least the durable
//!    floor — the highest commit the system honestly promised durable
//!    (via an un-dropped fsync chain) before the crash.
//!
//! Everything is a pure function of `(spec.seed, spec)` — a failing case
//! reprints its spec so it can be replayed exactly.

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use calc_common::phase::Phase;
use calc_common::rng::SplitMix;
use calc_common::simfs::{DirCrashMode, FaultSpec, OpCounts, SimVfs, TransientKind, TransientSpec};
use calc_common::types::{Key, TxnId};
use calc_common::vfs::Vfs;
use calc_common::Backoff;
use calc_core::file::CheckpointKind;
use calc_core::manifest::CheckpointDir;
use calc_core::strategy::{CheckpointStrategy, NoopEnv, TxnToken};
use calc_core::throttle::Throttle;
use calc_core::Codec;
use calc_engine::{classify, ErrorClass, StrategyKind};
use calc_recovery::logfile::{CommandLogReader, CommandLogStream, CommandLogWriter};
use calc_recovery::{read_dir_logs, truncate_segments_below, SegmentedLogWriter};
use calc_recovery::replay::{recover_streamed, RecoveryError};
use calc_storage::dual::StoreConfig;
use calc_txn::commitlog::{CommitLog, CommitRecord, PhaseStamp};
use calc_txn::proc::TxnOps;

use crate::model::{gen_op, model_at, Op};
use crate::procs::registry;

const WORKLOAD_SALT: u64 = 0x5e11_ab1e_0b5e_55ed;
const BACKOFF_SALT: u64 = 0xb0ff_b0ff_b0ff_b0ff;

/// Where transient I/O errors are injected during the live run.
#[derive(Clone, Copy, Debug)]
pub enum TransientPlan {
    /// One absolute window over the VFS's data-op indices (writes +
    /// creates): hits whatever the run is doing at those indices —
    /// checkpoint captures, command-log appends, or both.
    Window(TransientSpec),
    /// Re-arm a fresh window of `count` data ops at the start of *every*
    /// checkpoint cycle, so each capture fails at least once and must be
    /// retried. This is the harmless-failure regression driver: without
    /// the strategies' failure hooks (dirty-bit restore, tombstone
    /// re-queue), the retried cycle would silently skip everything the
    /// failed attempt consumed.
    EveryCheckpoint {
        /// What kind of transient error the window injects.
        kind: TransientKind,
        /// Data ops to let through before the window opens. `0` hits the
        /// first part file's create/header; larger values reach past
        /// `begin_parts` into the capture's record writes, so with
        /// multi-part cycles the error lands on an arbitrary part `k`
        /// while the other capture workers are mid-write.
        skip: u64,
        /// Window length in data ops. With `WriteError` and `skip: 0`,
        /// `2` makes each cycle fail exactly once: the capture's
        /// `create` passes (but consumes an index), its first write
        /// fails, and the retry starts past the window.
        count: u64,
    },
}

/// Specification of one crash experiment.
#[derive(Clone, Debug)]
pub struct SimSpec {
    /// Seed driving workload generation and every crash-time draw.
    pub seed: u64,
    /// Strategy under test.
    pub kind: StrategyKind,
    /// Fault to arm, if any. `None` = clean run ending in a power cut.
    pub fault: Option<FaultSpec>,
    /// Transactions to attempt.
    pub txns: u64,
    /// Checkpoint after every N transactions.
    pub checkpoint_every: u64,
    /// Group-commit the command log after every N transactions.
    pub sync_every: u64,
    /// How pending directory entries behave at crash time.
    pub dir_crash_mode: DirCrashMode,
    /// Transient I/O error injection, if any.
    pub transient: Option<TransientPlan>,
    /// Part files (and capture/load threads) per checkpoint. `None`
    /// reads `CKPT_THREADS` from the environment (default 1), so one
    /// sweep binary covers both the single-part and multi-part pipelines.
    pub ckpt_threads: Option<usize>,
    /// Retries per checkpoint cycle before giving up on that cycle
    /// (degraded: the run continues on the command log alone).
    pub ckpt_retries: u32,
    /// Checkpoint-part codec. `None` reads `CKPT_CODEC` from the
    /// environment (default `none`), so one sweep binary covers both the
    /// legacy and the compressed on-disk formats.
    pub codec: Option<Codec>,
    /// Command-log segmentation: rotate `cmdlog-<i>.log` segments at this
    /// size. `None` keeps the legacy single-file command log.
    pub log_segment_bytes: Option<u64>,
    /// After each checkpoint that completed on an honest fsync chain,
    /// truncate sealed log segments below the oldest surviving full's
    /// watermark — the engine's retention path, under crash faults.
    /// Requires `log_segment_bytes`.
    pub truncate_log: bool,
}

impl SimSpec {
    /// The standard small experiment: 40 transactions, checkpoint every
    /// 10, group-commit every 8.
    pub fn smoke(kind: StrategyKind, seed: u64) -> Self {
        SimSpec {
            seed,
            kind,
            fault: None,
            txns: 40,
            checkpoint_every: 10,
            sync_every: 8,
            dir_crash_mode: DirCrashMode::Seeded,
            transient: None,
            ckpt_threads: None,
            ckpt_retries: 3,
            codec: None,
            log_segment_bytes: None,
            truncate_log: false,
        }
    }

    /// The same experiment with one armed fault.
    pub fn with_fault(kind: StrategyKind, seed: u64, fault: FaultSpec) -> Self {
        SimSpec {
            fault: Some(fault),
            ..Self::smoke(kind, seed)
        }
    }
}

/// An oracle violation: recovery produced a state inconsistent with every
/// admissible commit prefix, or broke a durability promise. The message
/// embeds the full spec so the case can be replayed.
#[derive(Debug)]
pub struct OracleViolation {
    /// The spec that produced the violation.
    pub spec: SimSpec,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oracle violation [seed={:#x} kind={} fault={:?} mode={:?}]: {}",
            self.spec.seed, self.spec.kind, self.spec.fault, self.spec.dir_crash_mode, self.detail
        )
    }
}

impl std::error::Error for OracleViolation {}

/// What one experiment did — useful for asserting a sweep actually
/// exercised the scenarios it claims to.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Transactions that committed before the crash.
    pub committed: u64,
    /// Whether the armed fault fired mid-run (vs. the end-of-run power cut).
    pub crashed_mid_run: bool,
    /// The commit-consistent prefix recovery reached.
    pub recovered_prefix: u64,
    /// The durability floor the run established (highest honestly-synced
    /// commit / checkpoint watermark).
    pub durable_floor: u64,
    /// IO operation counts at crash time — the sweep domain.
    pub counts: OpCounts,
    /// True when the strategy was refused by recovery as
    /// not-transaction-consistent (expected for Fuzzy).
    pub refused_not_tc: bool,
    /// Checkpoint attempts that failed during the live run (retried
    /// attempts count individually).
    pub ckpt_failures: u64,
    /// The strategy's own count of harmlessly rolled-back cycles at
    /// crash time.
    pub aborted_cycles: u64,
    /// Transient errors the armed window actually injected.
    pub transient_hits: u64,
}

/// Serial execution bridge routing procedure ops to the strategy.
struct Bridge<'a> {
    strategy: &'a dyn CheckpointStrategy,
    token: TxnToken,
    failed: Option<String>,
}

impl TxnOps for Bridge<'_> {
    fn get(&mut self, key: Key) -> Option<calc_common::types::Value> {
        self.strategy.get(key)
    }
    fn put(&mut self, key: Key, value: &[u8]) {
        if let Err(e) = self.strategy.apply_write(&mut self.token, key, value) {
            self.failed = Some(format!("put {key}: {e}"));
        }
    }
    fn insert(&mut self, key: Key, value: &[u8]) -> bool {
        match self.strategy.apply_insert(&mut self.token, key, value) {
            Ok(ok) => ok,
            Err(e) => {
                self.failed = Some(format!("insert {key}: {e}"));
                false
            }
        }
    }
    fn delete(&mut self, key: Key) -> bool {
        self.strategy.apply_delete(&mut self.token, key).is_ok()
    }
}

/// The live run's durable log sink — legacy single file or segmented.
enum SimLog {
    Single(CommandLogWriter),
    Segmented(SegmentedLogWriter),
}

impl SimLog {
    fn append(&mut self, rec: &CommitRecord) -> io::Result<()> {
        match self {
            SimLog::Single(w) => w.append(rec),
            SimLog::Segmented(w) => w.append(rec),
        }
    }
    fn sync(&mut self) -> io::Result<()> {
        match self {
            SimLog::Single(w) => w.sync(),
            SimLog::Segmented(w) => w.sync(),
        }
    }
}

fn violation(spec: &SimSpec, detail: impl Into<String>) -> OracleViolation {
    OracleViolation {
        spec: spec.clone(),
        detail: detail.into(),
    }
}

fn store_config() -> StoreConfig {
    StoreConfig::for_records(1024, 64)
}

/// Part files (and capture/load threads) per checkpoint; `CKPT_THREADS=n`
/// sweeps the multi-part pipeline through the whole fault matrix.
fn ckpt_threads_from_env() -> usize {
    std::env::var("CKPT_THREADS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Runs one crash experiment end to end. `Ok` means the oracle held.
#[allow(clippy::result_large_err)] // violations are terminal and rare; no point boxing
pub fn run_sim(spec: &SimSpec) -> Result<SimReport, OracleViolation> {
    let vfs = match spec.fault {
        Some(f) => SimVfs::with_fault(spec.seed, f),
        None => SimVfs::new(spec.seed),
    };
    vfs.set_dir_crash_mode(spec.dir_crash_mode);
    if let Some(TransientPlan::Window(w)) = spec.transient {
        vfs.arm_transient(w);
    }
    let vfs_dyn: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let ckpt_dir = PathBuf::from("/sim/ckpts");
    let log_path = PathBuf::from("/sim/cmd.log");
    let log_seg_dir = PathBuf::from("/sim/cmdlog");
    let codec = spec
        .codec
        .unwrap_or_else(|| Codec::from_env().expect("CKPT_CODEC names a known codec"));

    let mut committed: Vec<(u64, Op)> = Vec::new();
    let mut durable_floor = 0u64;
    let mut ckpt_failures = 0u64;
    let mut aborted_cycles = 0u64;
    let reg = registry();

    // ---- Phase 1: live run, ended by the fault or by running out of work.
    'live: {
        let dir = match CheckpointDir::open_with_vfs(
            &ckpt_dir,
            Arc::new(Throttle::unlimited()),
            vfs_dyn.clone(),
        ) {
            Ok(d) => d,
            Err(_) => break 'live,
        };
        dir.set_checkpoint_threads(spec.ckpt_threads.unwrap_or_else(ckpt_threads_from_env));
        dir.set_codec(codec);
        let mut cmdlog = match spec.log_segment_bytes {
            Some(seg) => match SegmentedLogWriter::create(vfs_dyn.clone(), &log_seg_dir, seg) {
                Ok(w) => SimLog::Segmented(w),
                Err(_) => break 'live,
            },
            None => match CommandLogWriter::create_with_vfs(&vfs, &log_path) {
                Ok(w) => SimLog::Single(w),
                Err(_) => break 'live,
            },
        };
        let log = Arc::new(CommitLog::new(false));
        let strategy = spec.kind.build(store_config(), log.clone());
        // Partial strategies need a full ancestor in the recovery chain,
        // exactly as the engine writes one after initial load.
        if spec.kind.is_partial() && strategy.write_base_checkpoint(&dir).is_err() {
            break 'live;
        }
        let mut rng = SplitMix::new(spec.seed ^ WORKLOAD_SALT);
        let mut backoff = Backoff::new(
            Duration::from_millis(1),
            Duration::from_millis(64),
            spec.seed ^ BACKOFF_SALT,
        );

        for i in 0..spec.txns {
            let op = gen_op(&mut rng);
            let (proc_id, params) = op.encode();
            let procedure = reg.get(proc_id).expect("sim procs registered");
            let mut bridge = Bridge {
                strategy: strategy.as_ref(),
                token: strategy.txn_begin(),
                failed: None,
            };
            procedure
                .run(&params, &mut bridge)
                .expect("sim procs never abort");
            assert!(bridge.failed.is_none(), "sim op failed: {:?}", bridge.failed);
            let mut token = bridge.token;
            let (seq, stamp) = log.append_commit(TxnId(i), proc_id, params.clone());
            let rec = CommitRecord {
                seq,
                txn: TxnId(i),
                proc: proc_id,
                params,
            };
            // Recorded as committed *before* the append: the op already
            // executed against the primary's state, and whether it turns
            // durable is decided by how many of its log bytes survive the
            // crash — prefix semantics cover both outcomes. Pushing after
            // a successful append would make a torn-but-fully-surviving
            // final record (executed, written, never acked) read as a
            // resurrected write at the oracle.
            committed.push((seq.0, op));
            if cmdlog.append(&rec).is_err() {
                strategy.txn_end(token);
                break 'live;
            }
            strategy.on_commit(&mut token, seq, stamp);
            strategy.txn_end(token);

            if (i + 1) % spec.sync_every == 0 {
                match cmdlog.sync() {
                    // A durability promise only counts while no fsync has
                    // ever been dropped: one lying fsync voids the chain
                    // (the post-fsync-failure world cannot be trusted).
                    Ok(()) if vfs.fsyncs_dropped() == 0 => durable_floor = seq.0,
                    Ok(()) => {}
                    Err(_) => break 'live,
                }
            }
            if (i + 1) % spec.checkpoint_every == 0 {
                if let Some(TransientPlan::EveryCheckpoint { kind, skip, count }) = spec.transient {
                    vfs.arm_transient(TransientSpec {
                        kind,
                        from: vfs.counts().data_ops() + skip,
                        count,
                    });
                }
                // Mirror the engine's supervised daemon: a failed cycle is
                // harmless (the strategy rolled its coverage forward), so
                // transient and disk-full errors retry under the same
                // seeded backoff policy. Delays are recorded by the
                // backoff's jitter stream but not slept — simulated time.
                backoff.reset();
                let mut attempts = 0u32;
                loop {
                    match strategy.checkpoint(&NoopEnv, &dir) {
                        Ok(stats) => {
                            if vfs.fsyncs_dropped() == 0 {
                                durable_floor = durable_floor.max(stats.watermark.0);
                            }
                            // Retention, under the same honesty gate as the
                            // durability floor: one lying fsync voids the
                            // publish chain the truncation floor rests on.
                            if spec.truncate_log
                                && spec.log_segment_bytes.is_some()
                                && vfs.fsyncs_dropped() == 0
                            {
                                let floor = dir.scan().ok().and_then(|metas| {
                                    metas
                                        .iter()
                                        .filter(|m| m.kind == CheckpointKind::Full)
                                        .map(|m| m.watermark)
                                        .min()
                                });
                                if let Some(floor) = floor {
                                    let _ = truncate_segments_below(
                                        vfs_dyn.as_ref(),
                                        &log_seg_dir,
                                        floor,
                                    );
                                }
                            }
                            break;
                        }
                        Err(e) => {
                            ckpt_failures += 1;
                            aborted_cycles = strategy.aborted_cycles();
                            match classify(&e) {
                                ErrorClass::Fatal => break 'live,
                                _ if attempts < spec.ckpt_retries => {
                                    attempts += 1;
                                    let _delay = backoff.next_delay();
                                }
                                // Degraded: give up on this cycle and run
                                // on — the command log alone keeps every
                                // commit recoverable.
                                _ => break,
                            }
                        }
                    }
                }
            }
        }
        // Clean end of workload: one final honest group-commit, then the
        // power cut below.
        if cmdlog.sync().is_ok() && vfs.fsyncs_dropped() == 0 {
            if let Some((seq, _)) = committed.last() {
                durable_floor = durable_floor.max(*seq);
            }
        }
    }

    let crashed_mid_run = vfs.crashed();
    if !crashed_mid_run {
        vfs.force_crash();
    }
    let counts = vfs.counts();

    // ---- Phase 2: reboot the disk and recover.
    vfs.recover_view();
    let dir = CheckpointDir::open_with_vfs(
        &ckpt_dir,
        Arc::new(Throttle::unlimited()),
        vfs_dyn.clone(),
    )
    .map_err(|e| violation(spec, format!("reopening checkpoint dir after crash: {e}")))?;
    dir.set_checkpoint_threads(spec.ckpt_threads.unwrap_or_else(ckpt_threads_from_env));
    dir.set_codec(codec);
    let commands = if spec.log_segment_bytes.is_some() {
        match read_dir_logs(vfs_dyn.as_ref(), &log_seg_dir) {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(violation(spec, format!("reading durable log segments: {e}"))),
        }
    } else {
        match CommandLogReader::open_with_vfs(&vfs, &log_path) {
            Ok(r) => r
                .read_all()
                .map_err(|e| violation(spec, format!("reading durable command log: {e}")))?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(violation(spec, format!("opening durable command log: {e}"))),
        }
    };
    // Serial-driver invariant: the durable log is a prefix of commit order.
    for pair in commands.windows(2) {
        if pair[0].seq >= pair[1].seq {
            return Err(violation(spec, "durable command log out of order"));
        }
    }

    let fresh = spec.kind.build(store_config(), Arc::new(CommitLog::new(false)));
    let log_tail = commands.last().map(|c| c.seq.0).unwrap_or(0);
    if std::env::var("SIM_DEBUG").is_ok() {
        eprintln!("[sim-debug] post-crash dir listing:");
        if let Ok(names) = vfs.read_dir(&ckpt_dir) {
            for n in names {
                eprintln!("[sim-debug]   {}", n.display());
            }
        }
        match dir.scan() {
            Ok(metas) => {
                for m in &metas {
                    eprintln!(
                        "[sim-debug] scan: id={} kind={:?} watermark={} parts={} read_all={:?}",
                        m.id,
                        m.kind,
                        m.watermark.0,
                        m.parts.len(),
                        m.read_all_with_vfs(&vfs).map(|e| e.len())
                    );
                }
            }
            Err(e) => eprintln!("[sim-debug] scan error: {e}"),
        }
        eprintln!(
            "[sim-debug] quarantined={} log_tail={} commands={}",
            dir.quarantined_count(),
            log_tail,
            commands.len()
        );
    }
    // Recovery replays through the streaming reader (log decode + CRC on
    // the prefetch thread, apply in commit order here), exercising the
    // same pipelined path the engine uses. The eager `commands` read
    // above is the oracle's reference copy.
    let streamed = if spec.log_segment_bytes.is_some() {
        match CommandLogStream::open_dir_with_vfs(vfs_dyn.clone(), &log_seg_dir) {
            Ok(stream) => recover_streamed(&dir, fresh.as_ref(), &reg, stream),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                recover_streamed(&dir, fresh.as_ref(), &reg, std::iter::empty())
            }
            Err(e) => return Err(violation(spec, format!("opening segment stream: {e}"))),
        }
    } else {
        match CommandLogStream::open_with_vfs(&vfs, &log_path) {
            Ok(stream) => recover_streamed(&dir, fresh.as_ref(), &reg, stream),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                recover_streamed(&dir, fresh.as_ref(), &reg, std::iter::empty())
            }
            Err(e) => return Err(violation(spec, format!("opening command log stream: {e}"))),
        }
    };
    let recovered_prefix = match streamed {
        Ok(outcome) => {
            if std::env::var("SIM_RECOVERY_STATS").is_ok() {
                let s = outcome.stats;
                eprintln!(
                    "[sim] recovery[{}]: parts_loaded={} threads={} part_load={:?} merge={:?} \
                     replay={:?} replayed={}",
                    spec.kind, s.parts_loaded, s.threads, s.part_load, s.merge, s.replay,
                    outcome.replayed
                );
            }
            outcome.watermark.0.max(log_tail)
        }
        Err(RecoveryError::NotTransactionConsistent(_)) => {
            if matches!(spec.kind, StrategyKind::Fuzzy | StrategyKind::PFuzzy) {
                // For fuzzy checkpointing the refusal IS the oracle: a
                // non-transaction-consistent image must not be recovered
                // without a physical redo log (§2.1 of the paper).
                return Ok(SimReport {
                    committed: committed.len() as u64,
                    crashed_mid_run,
                    recovered_prefix: 0,
                    durable_floor,
                    counts,
                    refused_not_tc: true,
                    ckpt_failures,
                    aborted_cycles,
                    transient_hits: vfs.transient_hits(),
                });
            }
            return Err(violation(
                spec,
                "transaction-consistent strategy refused by recovery",
            ));
        }
        Err(RecoveryError::NoFullCheckpoint) => {
            // Legal when no checkpoint ever became durable: recovery is
            // replay of the whole durable log from an empty store.
            for rec in &commands {
                let procedure = reg
                    .get(rec.proc)
                    .ok_or_else(|| violation(spec, format!("unknown proc {}", rec.proc.0)))?;
                let mut bridge = Bridge {
                    strategy: fresh.as_ref(),
                    token: fresh.txn_begin(),
                    failed: None,
                };
                procedure
                    .run(&rec.params, &mut bridge)
                    .map_err(|e| violation(spec, format!("log-only replay aborted: {e:?}")))?;
                let mut token = bridge.token;
                let stamp = PhaseStamp {
                    cycle: 0,
                    phase: Phase::Rest,
                };
                fresh.on_commit(&mut token, rec.seq, stamp);
                fresh.txn_end(token);
            }
            log_tail
        }
        Err(e) => {
            return Err(violation(
                spec,
                format!("recovery failed on a legal crash state: {e}"),
            ))
        }
    };

    // ---- Phase 3: the oracle.
    if recovered_prefix < durable_floor {
        return Err(violation(
            spec,
            format!(
                "durability broken: recovered prefix {recovered_prefix} < durable floor \
                 {durable_floor} (a commit the system promised durable was lost)"
            ),
        ));
    }
    let expected = model_at(&committed, recovered_prefix);
    check_state_equals(spec, fresh.as_ref(), &expected, recovered_prefix)?;

    Ok(SimReport {
        committed: committed.len() as u64,
        crashed_mid_run,
        recovered_prefix,
        durable_floor,
        counts,
        refused_not_tc: false,
        ckpt_failures,
        aborted_cycles,
        transient_hits: vfs.transient_hits(),
    })
}

#[allow(clippy::result_large_err)]
fn check_state_equals(
    spec: &SimSpec,
    strategy: &dyn CheckpointStrategy,
    expected: &BTreeMap<u64, Vec<u8>>,
    prefix: u64,
) -> Result<(), OracleViolation> {
    if strategy.record_count() != expected.len() {
        return Err(violation(
            spec,
            format!(
                "recovered record count {} != model count {} at prefix {prefix}",
                strategy.record_count(),
                expected.len()
            ),
        ));
    }
    for (k, v) in expected {
        match strategy.get(Key(*k)) {
            Some(got) if got[..] == v[..] => {}
            Some(got) => {
                return Err(violation(
                    spec,
                    format!(
                        "key {k} diverged at prefix {prefix}: recovered {} bytes, model {} bytes",
                        got.len(),
                        v.len()
                    ),
                ))
            }
            None => {
                return Err(violation(
                    spec,
                    format!("key {k} missing after recovery at prefix {prefix}"),
                ))
            }
        }
    }
    Ok(())
}

/// Base seed for test sweeps; override with `SIM_SEED=<u64>` (decimal or
/// 0x-hex) to replay a specific failure locally.
pub fn base_seed() -> u64 {
    match std::env::var("SIM_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("SIM_SEED not a u64: {s:?}"))
        }
        Err(_) => 0xCA1C_51B7_0000_0000,
    }
}
