//! Deterministic crash-simulation harness for the CALC database.
//!
//! The paper's durability claims (§3: recovery from the newest durable
//! checkpoint plus command-log replay) are easy to state and hard to
//! test: the interesting failures live in the narrow windows between a
//! write, its fsync, a rename, and the parent-directory fsync that makes
//! the rename durable. This crate makes those windows enumerable.
//!
//! Ingredients:
//!
//! * [`calc_common::simfs::SimVfs`] — an in-memory filesystem tracking
//!   exactly which bytes and directory entries would survive a power
//!   loss, with one seeded fault injectable at any operation index
//!   (torn write, dropped fsync, crash before/after rename).
//! * [`model`] — a seeded workload generator and the serial reference
//!   model: the exact database state at every commit prefix.
//! * [`driver`] — [`driver::run_sim`] runs workload → crash → real
//!   recovery, then checks the oracle: the recovered store equals the
//!   reference model at some commit-consistent prefix `S`, with `S` at
//!   least the durability floor the run honestly established.
//!
//! Because every run is a pure function of its [`driver::SimSpec`], the
//! integration tests can *sweep*: fault-at-operation-N for every N in a
//! checkpoint cycle, every fault kind, every strategy. Reproduce any
//! reported failure with `SIM_SEED=<seed> cargo test -p calc-sim`.

#![warn(missing_docs)]

pub mod driver;
pub mod failover;
pub mod model;
pub mod procs;

pub use driver::{base_seed, run_sim, OracleViolation, SimReport, SimSpec, TransientPlan};
pub use failover::{run_failover, FailoverReport, FailoverSpec, FailoverViolation};
pub use model::{gen_op, model_at, Op};
