//! The two stored procedures the simulated workload is built from.
//!
//! Kept deliberately minimal: a key/value upsert and a delete. Both are
//! deterministic functions of their parameters, the property command-log
//! replay relies on. The registry here is the one handed to recovery, so
//! the pre-crash workload and the post-crash replay run identical code.

use std::sync::Arc;

use calc_common::types::Key;
use calc_txn::proc::{params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps};

/// Procedure id of the upsert.
pub const SET: ProcId = ProcId(1);
/// Procedure id of the delete.
pub const DELETE: ProcId = ProcId(2);

/// Upsert: `params = key:u64 | value bytes`.
pub struct SetProc;

impl Procedure for SetProc {
    fn id(&self) -> ProcId {
        SET
    }
    fn name(&self) -> &'static str {
        "sim-set"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        let val = r.bytes()?;
        if ops.get(key).is_some() {
            ops.put(key, val);
        } else {
            ops.insert(key, val);
        }
        Ok(())
    }
}

/// Delete: `params = key:u64`. Deleting an absent key is a no-op.
pub struct DeleteProc;

impl Procedure for DeleteProc {
    fn id(&self) -> ProcId {
        DELETE
    }
    fn name(&self) -> &'static str {
        "sim-delete"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        ops.delete(Key(r.u64()?));
        Ok(())
    }
}

/// The registry shared by the live workload and recovery replay.
pub fn registry() -> ProcRegistry {
    let mut r = ProcRegistry::new();
    r.register(Arc::new(SetProc));
    r.register(Arc::new(DeleteProc));
    r
}
