//! Transient-fault sweep (tier 4 of `scripts/verify.sh`): inject
//! recoverable I/O errors — transient write failures, ENOSPC windows,
//! dropped fsyncs — *during* checkpoint cycles across all ten
//! strategy × full/partial combinations, then crash and run real
//! recovery. The oracle (zero lost committed writes at or above the
//! durable floor) must hold on every run.
//!
//! This is the regression net for the harmless-failure contract: a
//! strategy that forgets to roll its dirty-bit coverage forward after an
//! aborted cycle produces a later checkpoint that silently *misses*
//! those keys, and the oracle catches the divergence.
//!
//! Reproduce any reported failure with `FAULT_SEED=<seed>` (decimal or
//! 0x-hex).

use calc_common::simfs::{FaultKind, FaultSpec, TransientKind};
use calc_core::Codec;
use calc_engine::StrategyKind;
use calc_sim::{run_sim, SimSpec, TransientPlan};

/// Base seed for the fault sweep; override with `FAULT_SEED=<u64>`
/// (decimal or 0x-hex) to replay a specific run.
fn fault_seed() -> u64 {
    match std::env::var("FAULT_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("FAULT_SEED not a u64: {s:?}"))
        }
        Err(_) => 0xFA17_5EED_0000_0000,
    }
}

/// The pinned deterministic regression from the ISSUE acceptance
/// criteria: every pCALC capture fails exactly once with a transient
/// write error mid-scan, is retried under backoff, then the run crashes.
/// Recovery must lose zero committed writes.
///
/// The smoke workload runs 40 transactions checkpointing every 10, so a
/// correct run retries through exactly 4 failed attempts (one per
/// cycle) and the strategy reports at least 4 harmlessly aborted cycles
/// (the base checkpoint is exempt: it is written before the plan's
/// first window is armed).
#[test]
fn pcalc_every_capture_fails_once_then_crash_loses_nothing() {
    let mut spec = SimSpec::smoke(StrategyKind::PCalc, fault_seed());
    spec.transient = Some(TransientPlan::EveryCheckpoint {
        kind: TransientKind::WriteError,
        skip: 0,
        count: 2,
    });
    let report = run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(
        report.ckpt_failures, 4,
        "expected exactly one failed attempt per checkpoint cycle: {report:?}"
    );
    assert!(
        report.aborted_cycles >= 4,
        "strategy did not roll back the failed cycles: {report:?}"
    );
    assert!(
        report.transient_hits >= 4,
        "armed windows never fired: {report:?}"
    );
    assert_eq!(report.committed, spec.txns, "failed cycles must be harmless");
}

/// Full CALC under the same every-capture-fails-once plan, for the
/// non-partial restore path (dirty bits re-marked into the next
/// interval, no tombstone queue).
#[test]
fn calc_every_capture_fails_once_then_crash_loses_nothing() {
    let mut spec = SimSpec::smoke(StrategyKind::Calc, fault_seed() ^ 0x10);
    spec.transient = Some(TransientPlan::EveryCheckpoint {
        kind: TransientKind::WriteError,
        skip: 0,
        count: 2,
    });
    let report = run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
    assert!(report.ckpt_failures >= 4, "windows never fired: {report:?}");
    assert_eq!(report.committed, spec.txns);
}

/// The multi-part regression pinned by the ISSUE acceptance criteria: a
/// transient write error landing on one part `k` *mid-capture* (the
/// other capture workers are already writing their own stripes) must
/// abort the whole cycle and roll the dirty bits of **every** shard
/// forward — not just the failing part's stripe. A strategy that only
/// restored the failing stripe would pass at `threads=1` and silently
/// lose the other stripes' keys at `threads=4`; the oracle catches that
/// as a divergence after the crash. The failure accounting must be
/// identical at every thread count.
#[test]
fn pcalc_part_failure_mid_capture_rolls_every_shard_forward() {
    // `skip: 9` reaches past `begin_parts` (part creates + headers) into
    // the capture's record/footer writes at both thread counts, so the
    // error hits an arbitrary in-flight part rather than the first
    // create. That offset is calibrated to the uncompressed write
    // pattern (one VFS write per record); the codec is pinned so a
    // `CKPT_CODEC` sweep doesn't shift the window out of the capture —
    // compressed captures get the same treatment from the
    // self-calibrating sweeps in `retention_crash.rs`.
    for threads in [1usize, 4] {
        let mut spec = SimSpec::smoke(StrategyKind::PCalc, fault_seed() ^ 0x9A);
        spec.codec = Some(Codec::None);
        spec.ckpt_threads = Some(threads);
        spec.transient = Some(TransientPlan::EveryCheckpoint {
            kind: TransientKind::WriteError,
            skip: 9,
            count: 2,
        });
        let report = run_sim(&spec).unwrap_or_else(|v| panic!("threads={threads}: {v}"));
        assert_eq!(
            report.ckpt_failures, 4,
            "threads={threads}: expected exactly one failed attempt per cycle: {report:?}"
        );
        assert!(
            report.aborted_cycles >= 4,
            "threads={threads}: strategy did not roll back the failed cycles: {report:?}"
        );
        assert_eq!(
            report.committed, spec.txns,
            "threads={threads}: failed cycles must be harmless"
        );
    }
}

/// Sweeps transient windows (write errors and ENOSPC) over several
/// offsets for every strategy × full/partial. Windows are indexed over
/// *all* data ops, so some hit checkpoint captures, some hit command-log
/// appends (a legitimate crash), and some hit both — the oracle must
/// hold regardless.
#[test]
fn transient_window_sweep_all_strategies() {
    let seed = fault_seed() ^ 0xA11;
    let mut failures_seen = 0u64;
    let mut hits_seen = 0u64;
    for (i, kind) in StrategyKind::ALL_CHECKPOINTING.into_iter().enumerate() {
        // Measure the clean run's data-op total, then slide the window
        // across the whole domain so some placements land inside
        // checkpoint captures and others inside command-log appends.
        let clean = run_sim(&SimSpec::smoke(kind, seed ^ ((i as u64) << 8)))
            .unwrap_or_else(|v| panic!("clean reference run failed: {v}"));
        let total = clean.counts.data_ops();
        for t_kind in [TransientKind::WriteError, TransientKind::Enospc] {
            let mut from = 1u64;
            while from < total {
                let mut spec = SimSpec::smoke(kind, seed ^ ((i as u64) << 8));
                spec.transient = Some(TransientPlan::Window(
                    calc_common::simfs::TransientSpec {
                        kind: t_kind,
                        from,
                        count: 6,
                    },
                ));
                let report = run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
                failures_seen += report.ckpt_failures;
                hits_seen += report.transient_hits;
                from += 5;
            }
        }
    }
    assert!(
        hits_seen > 0,
        "no transient window ever fired — sweep domain is wrong"
    );
    assert!(
        failures_seen > 0,
        "no checkpoint cycle ever failed — windows miss every capture"
    );
}

/// Per-cycle transient failures for every strategy: each capture fails
/// at least once and retries. Exercises all ten failure hooks.
#[test]
fn every_checkpoint_fails_once_all_strategies() {
    let seed = fault_seed() ^ 0xEC;
    for (i, kind) in StrategyKind::ALL_CHECKPOINTING.into_iter().enumerate() {
        let mut spec = SimSpec::smoke(kind, seed ^ ((i as u64) << 4));
        spec.transient = Some(TransientPlan::EveryCheckpoint {
            kind: TransientKind::WriteError,
            skip: 0,
            count: 2,
        });
        let report = run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
        assert!(
            report.ckpt_failures > 0,
            "{kind}: armed per-cycle windows never failed a capture: {report:?}"
        );
        assert_eq!(report.committed, spec.txns, "{kind}: commits must continue");
    }
}

/// Dropped-fsync sweep during checkpoint cycles: the lying fsync voids
/// the durability chain, so the driver stops advancing the durable
/// floor, and whatever recovery finds must still be a consistent
/// prefix.
#[test]
fn dropped_fsync_sweep_all_strategies() {
    let seed = fault_seed() ^ 0xD0F;
    for (i, kind) in StrategyKind::ALL_CHECKPOINTING.into_iter().enumerate() {
        for at in [1u64, 3, 6] {
            let spec = SimSpec::with_fault(
                kind,
                seed ^ ((i as u64) << 4),
                FaultSpec {
                    kind: FaultKind::DropFsync,
                    at,
                },
            );
            run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
        }
    }
}

/// ENOSPC exhausting every retry: the cycle is abandoned (degraded —
/// the run continues on the command log alone) and recovery still
/// loses nothing.
#[test]
fn enospc_exhausts_retries_then_degrades() {
    for kind in [StrategyKind::Calc, StrategyKind::PCalc] {
        let mut spec = SimSpec::smoke(kind, fault_seed() ^ 0xE05);
        // A huge per-cycle window: the first checkpoint and every one of
        // its retries hit ENOSPC, so the cycle is abandoned; the window
        // then kills a later command-log append, which is the crash.
        spec.transient = Some(TransientPlan::EveryCheckpoint {
            kind: TransientKind::Enospc,
            skip: 0,
            count: 1 << 20,
        });
        let report = run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
        assert!(
            report.ckpt_failures > spec.ckpt_retries as u64,
            "{kind}: ENOSPC cycle did not exhaust its retries: {report:?}"
        );
    }
}
