//! GC racing a crash (ISSUE satellite): the background merger collapses
//! the recovery chain into a new full checkpoint, then deletes the
//! inputs. A crash in the middle of those `remove_file` calls — with the
//! adversarial directory-crash mode where unlinks persist but nothing
//! else does — must never leave recovery preferring a partially-deleted
//! generation over the (durably published) replacement.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use calc_common::simfs::{DirCrashMode, SimVfs};
use calc_common::types::{CommitSeq, Key};
use calc_common::vfs::Vfs;
use calc_core::file::CheckpointKind;
use calc_core::manifest::CheckpointDir;
use calc_core::merge::{collapse, materialize_chain_with_vfs};
use calc_core::throttle::Throttle;

fn open_dir(vfs: &SimVfs) -> CheckpointDir {
    let v: Arc<dyn Vfs> = Arc::new(vfs.clone());
    CheckpointDir::open_with_vfs(&PathBuf::from("/gc/ckpts"), Arc::new(Throttle::unlimited()), v)
        .unwrap()
}

/// Publishes one full + three partial checkpoints and returns the state
/// their chain materializes to.
fn build_chain(dir: &CheckpointDir) -> BTreeMap<u64, Vec<u8>> {
    let mut p = dir.begin(CheckpointKind::Full, 0, CommitSeq(10)).unwrap();
    for k in 0..6u64 {
        p.writer().write_record(Key(k), &[k as u8; 8]).unwrap();
    }
    p.publish().unwrap();
    for id in 1..=3u64 {
        let mut p = dir
            .begin(CheckpointKind::Partial, id, CommitSeq(10 + id * 10))
            .unwrap();
        // Each partial deletes one key, overwrites one, adds one.
        p.writer().write_tombstone(Key(id)).unwrap();
        p.writer().write_record(Key(0), &[0xF0 + id as u8; 4]).unwrap();
        p.writer().write_record(Key(10 + id), &[id as u8; 4]).unwrap();
        p.publish().unwrap();
    }
    let (full, partials) = dir.recovery_chain().unwrap().unwrap();
    materialize_chain_with_vfs(dir.vfs().as_ref(), &full, &partials)
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k.0, v.to_vec()))
        .collect()
}

#[test]
fn gc_crash_at_every_remove_preserves_recovered_state() {
    // The collapse GCs 4 input files (full@0 + partials 1..=3). Crash
    // before the k-th unlink for every k, plus k=4 (= GC completes,
    // power cut right after), under the adversarial mode where only the
    // unlinks survive the crash.
    for k in 0..=4u64 {
        let vfs = SimVfs::new(0x6C_C5EED ^ (k << 32));
        vfs.set_dir_crash_mode(DirCrashMode::RemovesOnly);
        let dir = open_dir(&vfs);
        let expected = build_chain(&dir);

        vfs.crash_before_remove(k);
        let result = collapse(&dir);
        if k < 4 {
            assert!(result.is_err(), "crash_before_remove({k}) did not fire");
        } else {
            let stats = result.unwrap().unwrap();
            assert_eq!(stats.removed, 4);
            vfs.force_crash();
        }

        vfs.recover_view();
        let dir = open_dir(&vfs);
        let (full, partials) = dir
            .recovery_chain()
            .unwrap()
            .unwrap_or_else(|| panic!("no recoverable chain after GC crash at remove {k}"));
        // The merged full was durably published before GC started, so
        // recovery must land on it and reconstruct the same state no
        // matter which subset of the old generation is already gone.
        assert_eq!(full.id, 3, "recovery must prefer the merged full (k={k})");
        let got: BTreeMap<u64, Vec<u8>> =
            materialize_chain_with_vfs(dir.vfs().as_ref(), &full, &partials)
                .unwrap()
                .into_iter()
                .map(|(k, v)| (k.0, v.to_vec()))
                .collect();
        assert_eq!(got, expected, "state diverged after GC crash at remove {k}");
    }
}
