//! Crash-point sweeps (ISSUE satellite): run the same seeded workload
//! with a fault injected at operation index N, for every N an operation
//! class reaches during a full CALC checkpoint cycle — and a coarser
//! sweep for each baseline strategy. Every run must satisfy the recovery
//! oracle; a failure panics with the exact replayable spec.

use calc_common::simfs::{DirCrashMode, FaultKind, FaultSpec, OpCounts};
use calc_engine::StrategyKind;
use calc_sim::{base_seed, run_sim, SimSpec};

/// Op-class totals for one clean run of the standard workload — the
/// sweep domain. Measured per strategy because each checkpoints
/// differently.
fn clean_counts(kind: StrategyKind, seed: u64) -> OpCounts {
    run_sim(&SimSpec::smoke(kind, seed))
        .unwrap_or_else(|v| panic!("clean reference run failed: {v}"))
        .counts
}

/// Sweeps every fault kind over its op-class range with stride `step`,
/// returning how many runs crashed mid-run (i.e. the fault actually
/// fired before the workload ended).
fn sweep(kind: StrategyKind, seed: u64, step: u64) -> u64 {
    let counts = clean_counts(kind, seed);
    let classes: [(FaultKind, u64); 4] = [
        (FaultKind::TornWrite, counts.writes),
        (FaultKind::DropFsync, counts.sync_events()),
        (FaultKind::CrashBeforeRename, counts.renames),
        (FaultKind::CrashAfterRename, counts.renames),
    ];
    let mut fired = 0;
    for (fault_kind, total) in classes {
        let mut at = 0;
        while at < total {
            for mode in [DirCrashMode::Seeded, DirCrashMode::RemovesOnly] {
                let mut spec =
                    SimSpec::with_fault(kind, seed, FaultSpec { kind: fault_kind, at });
                spec.dir_crash_mode = mode;
                let report = run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
                if report.crashed_mid_run {
                    fired += 1;
                }
            }
            at += step;
        }
    }
    fired
}

#[test]
fn calc_exhaustive_crash_point_sweep() {
    // Every single IO operation index of a CALC run, all four fault
    // kinds, both directory-crash modes.
    let fired = sweep(StrategyKind::Calc, base_seed() ^ 0x1000, 1);
    assert!(fired > 0, "no fault ever fired — sweep domain is wrong");
}

#[test]
fn naive_coarse_crash_point_sweep() {
    sweep(StrategyKind::Naive, base_seed() ^ 0x2000, 5);
}

#[test]
fn fuzzy_coarse_crash_point_sweep() {
    // Fuzzy runs the workload and crashes like the others; its oracle is
    // that recovery refuses the non-transaction-consistent image.
    sweep(StrategyKind::Fuzzy, base_seed() ^ 0x3000, 5);
}

#[test]
fn ipp_coarse_crash_point_sweep() {
    sweep(StrategyKind::Ipp, base_seed() ^ 0x4000, 5);
}

#[test]
fn zigzag_coarse_crash_point_sweep() {
    sweep(StrategyKind::Zigzag, base_seed() ^ 0x5000, 5);
}

#[test]
fn partial_calc_crash_point_sweep() {
    // pCALC adds partial checkpoints + tombstones to the on-disk chain;
    // a coarse sweep keeps the recovery-chain logic honest too.
    sweep(StrategyKind::PCalc, base_seed() ^ 0x6000, 7);
}
