//! Adaptive checkpoint pacing under synthetic overload, at the engine
//! level (no server, no sockets — the load signal is driven directly).
//!
//! Three claims from the tentpole:
//!
//! * when the tps EWMA crosses the configured capacity, the load level
//!   reads `Overload` and the effective capture pool
//!   (`CheckpointDir::checkpoint_threads`) clamps to 1 — every strategy
//!   sizes its pool through that one method, so one assertion covers all;
//! * a checkpoint cycle captured under overload yields scan quanta
//!   (`capture_yields > 0`) — the capture path visibly backs off;
//! * with `adaptive_pacing: false` the same pressure changes nothing:
//!   configured parallelism, zero yields.

use std::time::Duration;

use calc_engine::{Database, EngineConfig, StrategyKind};
use calc_txn::proc::ProcRegistry;

const CONFIGURED_THREADS: usize = 4;

fn open_db(name: &str, adaptive: bool, capacity_tps: u64) -> Database {
    let dir = std::env::temp_dir().join(format!(
        "calc-overload-pacing-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ec = EngineConfig::new(StrategyKind::Calc, 1 << 16, 64, dir);
    ec.workers = 2;
    ec.checkpoint_threads = CONFIGURED_THREADS;
    ec.adaptive_pacing = adaptive;
    ec.load_capacity_tps = capacity_tps;
    Database::open(ec, ProcRegistry::new()).unwrap()
}

/// Pushes the tps EWMA past `capacity` by bursting synthetic commit
/// observations across several window folds (the signal folds its
/// throughput window every ~100ms).
fn drive_overload(db: &Database) {
    for _ in 0..5 {
        for _ in 0..5_000 {
            db.load().observe_commit(Duration::from_micros(50));
        }
        std::thread::sleep(Duration::from_millis(120));
    }
}

#[test]
fn overload_clamps_effective_capture_parallelism_to_one() {
    let db = open_db("clamp", true, 1_000);
    let dir = db.checkpoint_dir();
    assert_eq!(dir.configured_checkpoint_threads(), CONFIGURED_THREADS);
    assert_eq!(
        dir.checkpoint_threads(),
        CONFIGURED_THREADS,
        "idle engine must run the configured pool"
    );

    drive_overload(&db);
    assert_eq!(db.load().level(), calc_common::LoadLevel::Overload);
    assert_eq!(
        dir.checkpoint_threads(),
        1,
        "overload must clamp the capture pool to one worker"
    );
    assert_eq!(
        dir.configured_checkpoint_threads(),
        CONFIGURED_THREADS,
        "the configured value is not rewritten, only the effective one"
    );
    db.shutdown();
}

#[test]
fn capture_under_overload_yields_scan_quanta() {
    let db = open_db("yields", true, 1_000);
    // Enough records that capture crosses several pacing strides (the
    // writer consults the signal every 1024 records).
    for k in 0..20_000u64 {
        db.load_initial(calc_common::Key(k), &k.to_le_bytes()).unwrap();
    }
    assert_eq!(db.load().capture_yields(), 0);

    // Admission pressure holds Overload for a second — longer than this
    // capture takes — without needing a live tps stream mid-capture.
    db.load().note_pressure();
    let stats = db.checkpoint_now().unwrap();
    assert!(stats.records >= 20_000);
    let yields = db.load().capture_yields();
    assert!(
        yields > 0,
        "capture under overload must yield scan quanta, got 0"
    );
    db.shutdown();
}

#[test]
fn pacing_off_ignores_pressure_entirely() {
    let db = open_db("off", false, 1_000);
    for k in 0..20_000u64 {
        db.load_initial(calc_common::Key(k), &k.to_le_bytes()).unwrap();
    }
    drive_overload(&db);
    db.load().note_pressure();
    assert_eq!(
        db.load().level(),
        calc_common::LoadLevel::Overload,
        "the signal itself still grades the load"
    );
    assert_eq!(
        db.checkpoint_dir().checkpoint_threads(),
        CONFIGURED_THREADS,
        "pacing off: effective parallelism stays configured"
    );
    let stats = db.checkpoint_now().unwrap();
    assert!(stats.records >= 20_000);
    assert_eq!(
        db.load().capture_yields(),
        0,
        "pacing off: capture never yields"
    );
    db.shutdown();
}
