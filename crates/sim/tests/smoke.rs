//! 64-seed smoke sweep: every checkpointing strategy of the paper's
//! full-checkpoint comparison set, rotating through all four fault kinds
//! plus clean power cuts, under both directory-crash modes. This is the
//! tier-2 gate (`cargo verify-tier2` / `scripts/verify.sh`); a failure
//! prints the exact spec (seed, kind, fault, index) to replay with
//! `SIM_SEED=<seed> cargo test -p calc-sim`.

use calc_common::simfs::{DirCrashMode, FaultKind, FaultSpec};
use calc_engine::StrategyKind;
use calc_sim::{base_seed, run_sim, SimSpec};

const FAULTS: [FaultKind; 4] = [
    FaultKind::TornWrite,
    FaultKind::DropFsync,
    FaultKind::CrashBeforeRename,
    FaultKind::CrashAfterRename,
];

#[test]
fn sixty_four_seed_smoke_sweep() {
    let base = base_seed();
    let mut fuzzy_refusals = 0u32;
    let mut mid_run_crashes = 0u32;
    for i in 0..64u64 {
        let seed = base ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let kind = StrategyKind::FULL_SET[(i % 5) as usize];
        // i % 6: four fault kinds + two clean power-cut runs per cycle.
        let fault = match (i % 6) as usize {
            n if n < 4 => Some(FaultSpec {
                kind: FAULTS[n],
                // Spread fault indices across the op-class range; an
                // index past the run's op count degenerates to a clean
                // power cut, which is also a valid case.
                at: i / 6 * 7 % 60,
            }),
            _ => None,
        };
        let mut spec = SimSpec::smoke(kind, seed);
        spec.fault = fault;
        spec.dir_crash_mode = if i % 2 == 0 {
            DirCrashMode::Seeded
        } else {
            DirCrashMode::RemovesOnly
        };
        let report = run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
        if report.refused_not_tc {
            fuzzy_refusals += 1;
        }
        if report.crashed_mid_run {
            mid_run_crashes += 1;
        }
    }
    // The sweep must actually exercise both interesting regimes.
    assert!(fuzzy_refusals > 0, "no Fuzzy run reached recovery refusal");
    assert!(mid_run_crashes > 0, "no armed fault ever fired mid-run");
}

#[test]
fn clean_power_cut_recovers_every_strategy() {
    for (i, kind) in StrategyKind::FULL_SET.into_iter().enumerate() {
        let spec = SimSpec::smoke(kind, base_seed() ^ (0xA0 + i as u64));
        let report = run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
        if !report.refused_not_tc {
            // With the final group-commit honest, nothing is lost.
            assert_eq!(
                report.recovered_prefix, report.durable_floor,
                "clean cut should recover exactly the durable floor for {kind}"
            );
            assert_eq!(report.committed, spec.txns);
        }
    }
}

#[test]
fn same_spec_same_outcome() {
    let spec = SimSpec::with_fault(
        StrategyKind::Calc,
        base_seed() ^ 0xD5,
        FaultSpec {
            kind: FaultKind::TornWrite,
            at: 33,
        },
    );
    let a = run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
    let b = run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.recovered_prefix, b.recovered_prefix);
    assert_eq!(a.durable_floor, b.durable_floor);
    assert_eq!(a.counts, b.counts);
}
