//! Tier-2 crash coverage for group commit (ISSUE satellite): the durable
//! floor after a crash must contain every commit whose ticket resolved
//! `Ok` — acknowledgement happens strictly after the batch's fsync, so a
//! power cut at ANY instant loses only unacknowledged work.
//!
//! Concurrent committers assign commit sequences under a shared lock
//! (the same enqueue-under-lock discipline the engine uses, so channel
//! order equals seq order), submit through [`GroupCommitter`], and record
//! which waits came back `Ok`. The simulated filesystem then crashes;
//! recovery reads the surviving segments and the oracle checks
//! `acked ⊆ recovered` — and that the survivors form an in-order history
//! a deterministic replay could consume.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use calc_common::simfs::SimVfs;
use calc_common::types::{CommitSeq, TxnId};
use calc_recovery::{read_dir_logs, GroupCommitConfig, GroupCommitter, SegmentedLogWriter};
use calc_txn::commitlog::CommitRecord;
use calc_txn::proc::ProcId;

fn rec(seq: u64) -> CommitRecord {
    CommitRecord {
        seq: CommitSeq(seq),
        txn: TxnId(seq),
        proc: ProcId(1),
        params: Arc::from(seq.to_le_bytes().to_vec().into_boxed_slice()),
    }
}

/// One crash experiment: `committers` threads submit durably until the
/// filesystem dies; the main thread force-crashes once `crash_after`
/// batches have fsynced. Returns `(acked seqs, recovered seqs)`.
fn run_crash(
    seed: u64,
    config: GroupCommitConfig,
    committers: usize,
    crash_after: u64,
) -> (BTreeSet<u64>, Vec<u64>) {
    let dir = PathBuf::from("/gc-crash/cmdlog");
    let vfs = SimVfs::new(seed);
    // Tiny segments so the crash also crosses rotation boundaries.
    let writer = SegmentedLogWriter::create(Arc::new(vfs.clone()), &dir, 512).unwrap();
    let gc = Arc::new(GroupCommitter::start(Box::new(writer), config, None));

    let seq = Arc::new(Mutex::new(0u64));
    let handles: Vec<_> = (0..committers)
        .map(|_| {
            let gc = gc.clone();
            let seq = seq.clone();
            std::thread::spawn(move || {
                let mut acked = Vec::new();
                loop {
                    // Seq assignment and enqueue under one lock — the
                    // engine's ordering discipline — then wait for the
                    // batch fsync outside it.
                    let ticket = {
                        let mut next = seq.lock().unwrap();
                        *next += 1;
                        let s = *next;
                        (s, gc.submit_durable(rec(s)))
                    };
                    match ticket.1.wait(Duration::from_secs(30)) {
                        Ok(()) => acked.push(ticket.0),
                        // The crash: this commit carries no promise, and
                        // neither will any later one. Stop.
                        Err(_) => break,
                    }
                }
                acked
            })
        })
        .collect();

    // Let real batches accumulate, then cut the power mid-stream.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while gc.batches() < crash_after {
        assert!(
            std::time::Instant::now() < deadline,
            "never reached {crash_after} batches"
        );
        std::thread::yield_now();
    }
    vfs.force_crash();

    let mut acked = BTreeSet::new();
    for h in handles {
        for s in h.join().unwrap() {
            assert!(acked.insert(s), "seq {s} acked twice");
        }
    }
    drop(Arc::try_unwrap(gc).expect("committers dropped their handles"));

    // Reboot: only what the crash preserved is visible.
    vfs.recover_view();
    let recovered = read_dir_logs(&vfs, &dir)
        .unwrap()
        .into_iter()
        .map(|r| r.seq.0)
        .collect();
    (acked, recovered)
}

fn check_oracle(acked: &BTreeSet<u64>, recovered: &[u64], label: &str) {
    // The durable floor covers every acknowledgement: ack-after-fsync
    // means a resolved ticket IS a durability promise.
    let on_disk: BTreeSet<u64> = recovered.iter().copied().collect();
    for s in acked {
        assert!(
            on_disk.contains(s),
            "{label}: seq {s} was acknowledged durable but is not on disk \
             (acked {} / recovered {})",
            acked.len(),
            recovered.len()
        );
    }
    // Survivors must form an in-order, gap-free history — replay cannot
    // skip a commit — and unacknowledged survivors are fine (the batch
    // fsynced, the crash just beat the acknowledgement).
    for w in recovered.windows(2) {
        assert_eq!(w[1], w[0] + 1, "{label}: recovered log has a gap or reorder");
    }
    if let Some(first) = recovered.first() {
        assert_eq!(*first, 1, "{label}: recovered log must start at seq 1");
    }
}

/// The headline sweep: group-commit batching (wide window, deep batches)
/// crashed at several batch counts across seeds. Every acknowledged
/// commit must be on disk after recovery.
#[test]
fn crash_mid_stream_durable_floor_covers_every_ack() {
    for (i, crash_after) in [1u64, 2, 4].into_iter().enumerate() {
        let (acked, recovered) = run_crash(
            0x6C0DEAD ^ ((i as u64) << 40),
            GroupCommitConfig {
                window: Duration::from_micros(200),
                max_batch: 64,
                ..Default::default()
            },
            4,
            crash_after,
        );
        assert!(
            !acked.is_empty(),
            "crash_after={crash_after}: no commit was ever acknowledged"
        );
        check_oracle(&acked, &recovered, &format!("crash_after={crash_after}"));
    }
}

/// The degenerate per-commit-fsync mode (`max_batch = 1`, the benchmark
/// baseline) honors the same contract through the same code path.
#[test]
fn crash_under_per_commit_fsync_honors_same_contract() {
    let (acked, recovered) = run_crash(
        0x6C0_BEEF,
        GroupCommitConfig {
            window: Duration::from_micros(50),
            max_batch: 1,
            ..Default::default()
        },
        2,
        3,
    );
    assert!(!acked.is_empty());
    check_oracle(&acked, &recovered, "per-commit");
}

/// Fire-and-forget submissions (ack-before-fsync) may lose their
/// unflushed tail — but never anything a durable waiter was told about.
/// Mixing both disciplines on one committer is exactly the engine's
/// `execute` vs `execute_durable` split.
#[test]
fn mixed_disciplines_lose_only_unacknowledged_tail() {
    let dir = PathBuf::from("/gc-mixed/cmdlog");
    let vfs = SimVfs::new(0x6C0_5EED);
    let writer = SegmentedLogWriter::create(Arc::new(vfs.clone()), &dir, 512).unwrap();
    let gc = GroupCommitter::start(
        Box::new(writer),
        GroupCommitConfig {
            window: Duration::from_secs(60), // only explicit flushes close batches
            max_batch: 1 << 20,
            ..Default::default()
        },
        None,
    );

    // Batch 1: two fire-and-forget, one durable waiter; the flush closes
    // the batch and its single fsync resolves the ticket for all three.
    gc.submit(rec(1));
    gc.submit(rec(2));
    let ticket = gc.submit_durable(rec(3));
    gc.flush().wait(Duration::from_secs(30)).unwrap();
    ticket.wait(Duration::from_secs(30)).unwrap();
    // Batch 2: fire-and-forget only, never flushed — the crash eats it.
    gc.submit(rec(4));
    gc.submit(rec(5));

    vfs.force_crash();
    drop(gc); // the final drain's sync fails against the crashed disk
    vfs.recover_view();
    let recovered: Vec<u64> = read_dir_logs(&vfs, &dir)
        .unwrap()
        .into_iter()
        .map(|r| r.seq.0)
        .collect();
    // The fsynced batch survives whole; of the unflushed tail, a prefix
    // may survive (the sync thread races the crash: an append that
    // triggered a segment rotation gets fsynced with the rotated-out
    // segment) but nothing may be reordered or invented.
    assert!(
        recovered.len() >= 3 && recovered == [1, 2, 3, 4, 5][..recovered.len()],
        "acked batch [1,2,3] must survive whole and recovery must be a \
         submission-order prefix; got {recovered:?}"
    );
}
