//! ISSUE 6 crash coverage: compressed checkpoint parts + segmented
//! command log + retention-driven truncation, under the recovery oracle.
//!
//! Two layers:
//!
//! * **Sweeps** — the standard seeded workload with RLE-compressed parts,
//!   a tiny segment threshold (so rotation happens constantly) and
//!   truncation after every durable checkpoint; faults injected at every
//!   swept operation index. This drives crashes *during* segment
//!   rotation (a rotation is a seal-fsync + create) and *between* a
//!   checkpoint publish and the log truncation that follows it — the two
//!   new windows this PR opens. The oracle is zero lost writes: recovery
//!   must reach at least the durable floor.
//! * **A directed regression** — a torn/corrupt compressed block in one
//!   part of the newest cycle must quarantine that whole cycle and fall
//!   recovery back to the parent chain, never surface wrong data.

use std::sync::Arc;

use calc_common::simfs::{DirCrashMode, FaultKind, FaultSpec, OpCounts};
use calc_common::types::{CommitSeq, Key};
use calc_core::calc::CalcStrategy;
use calc_core::file::CheckpointKind;
use calc_core::manifest::CheckpointDir;
use calc_core::strategy::CheckpointStrategy;
use calc_core::throttle::Throttle;
use calc_core::Codec;
use calc_engine::StrategyKind;
use calc_recovery::replay::recover_checkpoint_only;
use calc_sim::{base_seed, run_sim, SimSpec};
use calc_storage::dual::StoreConfig;
use calc_txn::commitlog::CommitLog;

/// The standard smoke experiment with every ISSUE 6 knob on: compressed
/// parts, 512-byte log segments (a rotation every ~10 commits), and
/// truncation after each durable checkpoint.
fn retention_spec(kind: StrategyKind, seed: u64) -> SimSpec {
    let mut spec = SimSpec::smoke(kind, seed);
    spec.codec = Some(Codec::Rle);
    spec.log_segment_bytes = Some(512);
    spec.truncate_log = true;
    spec
}

/// All ten strategy × full/partial combos survive clean runs (power cut
/// at end of workload) with compression + truncation on, across fixed
/// seeds.
#[test]
fn compressed_retention_all_strategies_clean_runs() {
    for kind in StrategyKind::ALL_CHECKPOINTING {
        for k in 0..3u64 {
            let spec = retention_spec(kind, base_seed() ^ 0xA000 ^ k);
            run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
        }
    }
}

fn clean_counts(spec: &SimSpec) -> OpCounts {
    run_sim(spec)
        .unwrap_or_else(|v| panic!("clean reference run failed: {v}"))
        .counts
}

/// Sweeps every fault kind over its op-class range with stride `step`.
/// Rotation seals/creates land in the write+fsync domain and truncation's
/// removes shift every later op index, so the sweep crosses both new
/// windows at every alignment.
fn sweep(kind: StrategyKind, seed: u64, step: u64) -> u64 {
    let spec0 = retention_spec(kind, seed);
    let counts = clean_counts(&spec0);
    let classes: [(FaultKind, u64); 4] = [
        (FaultKind::TornWrite, counts.writes),
        (FaultKind::DropFsync, counts.sync_events()),
        (FaultKind::CrashBeforeRename, counts.renames),
        (FaultKind::CrashAfterRename, counts.renames),
    ];
    let mut fired = 0;
    for (fault_kind, total) in classes {
        let mut at = 0;
        while at < total {
            for mode in [DirCrashMode::Seeded, DirCrashMode::RemovesOnly] {
                let mut spec = retention_spec(kind, seed);
                spec.fault = Some(FaultSpec {
                    kind: fault_kind,
                    at,
                });
                spec.dir_crash_mode = mode;
                let report = run_sim(&spec).unwrap_or_else(|v| panic!("{v}"));
                if report.crashed_mid_run {
                    fired += 1;
                }
            }
            at += step;
        }
    }
    fired
}

#[test]
fn calc_compressed_retention_crash_point_sweep() {
    let fired = sweep(StrategyKind::Calc, base_seed() ^ 0xB000, 2);
    assert!(fired > 0, "no fault ever fired — sweep domain is wrong");
}

#[test]
fn partial_calc_compressed_retention_crash_point_sweep() {
    let fired = sweep(StrategyKind::PCalc, base_seed() ^ 0xC000, 3);
    assert!(fired > 0, "no fault ever fired — sweep domain is wrong");
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "calc-retention-crash-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// A corrupt compressed block in ONE part of the newest cycle quarantines
/// that entire cycle: recovery falls back to the parent chain and reports
/// the parent's watermark, never a torn mixture of the two.
#[test]
fn torn_compressed_block_quarantines_cycle_and_falls_back() {
    let root = tmp("fallback");
    let dir = CheckpointDir::open(&root, Arc::new(Throttle::unlimited())).unwrap();
    dir.set_codec(Codec::Rle);

    // Cycle 1 (the parent): key 1 -> "one", key 3 -> "three".
    let (p, mut ws) = dir
        .begin_parts(CheckpointKind::Full, 1, CommitSeq(10), 2)
        .unwrap();
    ws[0].write_record(Key(1), b"one-one-one-one-one-one").unwrap();
    ws[1].write_record(Key(3), b"three-three-three-three").unwrap();
    p.publish(ws).unwrap();

    // Cycle 2 (the victim): rewrites key 1, adds key 2.
    let (p, mut ws) = dir
        .begin_parts(CheckpointKind::Full, 2, CommitSeq(20), 2)
        .unwrap();
    ws[0].write_record(Key(1), b"two-two-two-two-two-two").unwrap();
    ws[1].write_record(Key(2), b"second-second-second-se").unwrap();
    p.publish(ws).unwrap();

    // Corrupt one byte in the middle of cycle 2, part 0 — inside a
    // compressed frame, so the per-block CRC must catch it.
    let victim = root.join(CheckpointDir::part_file_name(2, CheckpointKind::Full, 0));
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();

    let fresh = CalcStrategy::full(
        StoreConfig::for_records(1024, 16),
        Arc::new(CommitLog::new(false)),
    );
    let outcome = recover_checkpoint_only(&dir, &fresh).unwrap();
    assert_eq!(
        outcome.watermark,
        CommitSeq(10),
        "recovery must fall back to the parent cycle's watermark"
    );
    assert!(
        dir.quarantined_count() >= 1,
        "the corrupt cycle was not quarantined"
    );
    assert_eq!(fresh.get(Key(1)).as_deref(), Some(&b"one-one-one-one-one-one"[..]));
    assert_eq!(fresh.get(Key(3)).as_deref(), Some(&b"three-three-three-three"[..]));
    assert!(
        fresh.get(Key(2)).is_none(),
        "no record from the quarantined cycle may survive"
    );
    std::fs::remove_dir_all(&root).ok();
}
