//! Regression tests for the two missing-directory-fsync durability bugs
//! the simulator caught in the seed code, pinned forever: each test
//! replays the *pre-fix* IO sequence with raw [`Vfs`] primitives and
//! shows the data is lost, then runs the *fixed* code path and shows it
//! survives the identical crash.
//!
//! Both use [`DirCrashMode::RemovesOnly`], the adversarial-but-legal
//! POSIX outcome where no un-fsynced directory mutation survives a power
//! loss. `rename(2)` is atomic but not durable until the parent
//! directory is fsynced; same for a newly created file's *name*.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use calc_common::simfs::{DirCrashMode, SimVfs};
use calc_common::types::{CommitSeq, Key, TxnId};
use calc_common::vfs::Vfs;
use calc_core::file::{CheckpointKind, CheckpointWriter};
use calc_core::manifest::CheckpointDir;
use calc_core::throttle::Throttle;
use calc_recovery::logfile::{CommandLogReader, CommandLogWriter};
use calc_txn::commitlog::CommitRecord;
use calc_txn::proc::ProcId;

fn adversarial_vfs(seed: u64) -> SimVfs {
    let vfs = SimVfs::new(seed);
    vfs.set_dir_crash_mode(DirCrashMode::RemovesOnly);
    vfs
}

fn open_dir(vfs: &SimVfs, path: &str) -> CheckpointDir {
    let v: Arc<dyn Vfs> = Arc::new(vfs.clone());
    CheckpointDir::open_with_vfs(&PathBuf::from(path), Arc::new(Throttle::unlimited()), v)
        .unwrap()
}

/// The seed's original `publish()`: fsync the file, rename into place,
/// and stop — no parent-directory fsync.
fn publish_without_dir_fsync(vfs: &dyn Vfs, dir: &Path) {
    let tmp = dir.join(".tmp-ckpt-0000000001-full.calc");
    let mut w = CheckpointWriter::create_with_vfs(
        vfs,
        &tmp,
        CheckpointKind::Full,
        1,
        CommitSeq(5),
        Arc::new(Throttle::unlimited()),
    )
    .unwrap();
    w.write_record(Key(7), b"payload").unwrap();
    w.finish().unwrap();
    vfs.rename(&tmp, &dir.join("ckpt-0000000001-full.calc")).unwrap();
    // (missing) vfs.sync_dir(dir)
}

#[test]
fn checkpoint_publish_rename_needs_parent_dir_fsync() {
    // Pre-fix sequence: the checkpoint vanishes wholesale.
    let vfs = adversarial_vfs(0xD1F_F51);
    let dir = open_dir(&vfs, "/a/ckpts");
    vfs.sync_dir(&PathBuf::from("/a/ckpts")).unwrap(); // directory itself durable
    publish_without_dir_fsync(vfs_ref(&dir), dir.path());
    vfs.force_crash();
    vfs.recover_view();
    let dir = open_dir(&vfs, "/a/ckpts");
    assert!(
        dir.recovery_chain().unwrap().is_none(),
        "rename without dir fsync must be lossy under RemovesOnly — \
         if this starts failing, the simulator's POSIX model regressed"
    );

    // Fixed path (`PendingCheckpoint::publish`): survives the same crash.
    let vfs = adversarial_vfs(0xD1F_F52);
    let dir = open_dir(&vfs, "/a/ckpts");
    let mut p = dir.begin(CheckpointKind::Full, 1, CommitSeq(5)).unwrap();
    p.writer().write_record(Key(7), b"payload").unwrap();
    p.publish().unwrap();
    vfs.force_crash();
    vfs.recover_view();
    let dir = open_dir(&vfs, "/a/ckpts");
    let (full, partials) = dir
        .recovery_chain()
        .unwrap()
        .expect("published checkpoint must survive the crash");
    assert_eq!(full.id, 1);
    assert_eq!(full.records, 1);
    assert!(partials.is_empty());
}

#[test]
fn command_log_creation_needs_parent_dir_fsync() {
    let rec = CommitRecord {
        seq: CommitSeq(1),
        txn: TxnId(1),
        proc: ProcId(1),
        params: Arc::from(&b"xyz"[..]),
    };

    // Pre-fix sequence: create + append + fsync *the file* only. The
    // bytes are durable but the name that reaches them is not.
    let vfs = adversarial_vfs(0xD1F_F53);
    vfs.create_dir_all(&PathBuf::from("/b")).unwrap();
    vfs.sync_dir(&PathBuf::from("/")).unwrap();
    vfs.sync_dir(&PathBuf::from("/b")).unwrap();
    let path = PathBuf::from("/b/cmd.log");
    {
        let mut out = vfs.create(&path).unwrap();
        // Same record encoding CommandLogWriter uses, minus its fixes.
        out.write_all(&[21, 0, 0, 0]).unwrap();
        out.sync().unwrap();
        // (missing) vfs.sync_dir("/b")
    }
    vfs.force_crash();
    vfs.recover_view();
    assert!(
        vfs.open_read(&path).is_err(),
        "un-fsynced file name must be lost under RemovesOnly"
    );

    // Fixed path (`CommandLogWriter::create_with_vfs`): the name is
    // durable before the first commit is acknowledged.
    let vfs = adversarial_vfs(0xD1F_F54);
    vfs.create_dir_all(&PathBuf::from("/b")).unwrap();
    vfs.sync_dir(&PathBuf::from("/")).unwrap();
    vfs.sync_dir(&PathBuf::from("/b")).unwrap();
    {
        let mut w = CommandLogWriter::create_with_vfs(&vfs, &path).unwrap();
        w.append(&rec).unwrap();
        w.sync().unwrap();
    }
    vfs.force_crash();
    vfs.recover_view();
    let records = CommandLogReader::open_with_vfs(&vfs, &path)
        .expect("fsynced log name must survive the crash")
        .read_all()
        .unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].seq, CommitSeq(1));
    assert_eq!(&records[0].params[..], b"xyz");
}

fn vfs_ref(dir: &CheckpointDir) -> &dyn Vfs {
    dir.vfs().as_ref()
}
