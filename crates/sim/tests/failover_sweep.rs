//! ISSUE 7 crash coverage: warm standby + crash-sim-verified failover.
//!
//! Three layers:
//!
//! * **Clean runs** — every strategy runs the two-node topology to a
//!   power cut and promotes; transaction-consistent kinds must satisfy
//!   the promotion oracle, fuzzy kinds must be refused as standby seeds.
//! * **Sweeps** — the primary crashes at every swept operation index
//!   (torn log-tail writes, dropped fsyncs — including the manifest's,
//!   crashes on either side of a rename — including mid-rotation seal →
//!   create), under both directory crash modes, with retention
//!   truncating segments under the tailing standby throughout. The
//!   oracle is zero lost committed writes and no resurrected deletes:
//!   the promoted state must equal the serial model at a prefix ≥ the
//!   durable floor.
//! * **Directed regressions** — the tailer×retention race pinned from
//!   both sides: a laggy standby whose cursor segment is truncated away
//!   must re-bootstrap from the covering checkpoint (never error, never
//!   skip), and a hot standby must ride through retention undisturbed.
//!
//! Replay any failure with `SIM_SEED=<seed> cargo test -p calc-sim
//! --test failover_sweep`.

use calc_common::simfs::{DirCrashMode, FaultKind, FaultSpec, OpCounts};
use calc_engine::StrategyKind;
use calc_sim::{base_seed, run_failover, FailoverSpec};

/// Seed base for this suite; `SIM_SEED` overrides for replay.
fn seed(salt: u64) -> u64 {
    base_seed() ^ salt
}

#[test]
fn all_strategies_clean_failover_or_refusal() {
    for kind in StrategyKind::ALL_CHECKPOINTING {
        for k in 0..3u64 {
            let spec = FailoverSpec::smoke(kind, seed(0x1F00 ^ k));
            let report = run_failover(&spec).unwrap_or_else(|v| panic!("{v}"));
            if matches!(kind, StrategyKind::Fuzzy | StrategyKind::PFuzzy) {
                assert!(
                    report.refused_not_tc,
                    "{kind}: fuzzy checkpoints must be refused as standby seeds"
                );
                continue;
            }
            assert!(!report.refused_not_tc, "{kind} wrongly refused");
            assert_eq!(report.committed, spec.txns, "{kind}: clean run lost txns");
            assert!(
                report.promoted_prefix >= report.durable_floor,
                "{kind}: {report:?}"
            );
            assert!(
                report.commits_applied > 0,
                "{kind}: standby never applied anything — the tail is dead: {report:?}"
            );
        }
    }
}

fn clean_counts(spec: &FailoverSpec) -> OpCounts {
    run_failover(spec)
        .unwrap_or_else(|v| panic!("clean reference run failed: {v}"))
        .counts
}

/// Crashes the primary at every swept op index across all four fault
/// classes and both directory crash modes, promoting the standby each
/// time. Returns how many faults actually fired.
fn sweep(kind: StrategyKind, seed: u64, step: u64, poll_every: u64) -> u64 {
    let mut spec0 = FailoverSpec::smoke(kind, seed);
    spec0.poll_every = poll_every;
    let counts = clean_counts(&spec0);
    let classes: [(FaultKind, u64); 4] = [
        (FaultKind::TornWrite, counts.writes),
        (FaultKind::DropFsync, counts.sync_events()),
        (FaultKind::CrashBeforeRename, counts.renames),
        (FaultKind::CrashAfterRename, counts.renames),
    ];
    let mut fired = 0;
    for (fault_kind, total) in classes {
        let mut at = 0;
        while at < total {
            for mode in [DirCrashMode::Seeded, DirCrashMode::RemovesOnly] {
                let mut spec = spec0.clone();
                spec.fault = Some(FaultSpec {
                    kind: fault_kind,
                    at,
                });
                spec.dir_crash_mode = mode;
                let report = run_failover(&spec).unwrap_or_else(|v| panic!("{v}"));
                if report.crashed_mid_run {
                    fired += 1;
                }
            }
            at += step;
        }
    }
    fired
}

#[test]
fn calc_failover_crash_point_sweep() {
    let fired = sweep(StrategyKind::Calc, seed(0x2F00), 2, 4);
    assert!(fired > 0, "no fault ever fired — sweep domain is wrong");
}

#[test]
fn partial_calc_failover_crash_point_sweep() {
    let fired = sweep(StrategyKind::PCalc, seed(0x3F00), 3, 4);
    assert!(fired > 0, "no fault ever fired — sweep domain is wrong");
}

/// A laggy standby under the same crash sweep: retention truncates the
/// log out from under its anchored cursor mid-run, so promotions cross
/// the re-bootstrap path at arbitrary crash points.
#[test]
fn laggy_standby_failover_crash_point_sweep() {
    let fired = sweep(StrategyKind::Calc, seed(0x4F00), 4, 1 << 20);
    assert!(fired > 0, "no fault ever fired — sweep domain is wrong");
}

/// The tailer×retention race, laggy side: the standby anchors at segment
/// 0 and never polls again; the primary's retention deletes that segment.
/// The standby must re-bootstrap from the covering checkpoint — never
/// error out, never skip a commit.
#[test]
fn retention_outruns_cursor_forces_rebootstrap() {
    let mut spec = FailoverSpec::smoke(StrategyKind::Calc, seed(0x5F00));
    spec.poll_every = 1 << 20; // anchor poll only
    let report = run_failover(&spec).unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(report.committed, spec.txns);
    assert!(
        report.rebootstraps >= 1,
        "retention never outran the cursor — race not exercised: {report:?}"
    );
    assert!(
        report.promoted_prefix >= report.durable_floor,
        "{report:?}"
    );
}

/// The race's hot side: a standby polling every transaction stays ahead
/// of retention, so truncation only ever removes segments behind its
/// cursor — it must ride through without a single lost-prefix event.
#[test]
fn hot_standby_rides_through_retention_undisturbed() {
    let mut spec = FailoverSpec::smoke(StrategyKind::Calc, seed(0x6F00));
    spec.poll_every = 1;
    let report = run_failover(&spec).unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(report.committed, spec.txns);
    assert_eq!(
        report.lost_prefix_events, 0,
        "a hot standby must never lose its prefix to retention: {report:?}"
    );
    assert_eq!(report.rebootstraps, 0, "{report:?}");
    assert!(
        report.commits_applied >= spec.txns,
        "hot standby should have tailed every commit live: {report:?}"
    );
}

/// Fuzzy checkpoints cannot seed deterministic replay: the standby must
/// refuse them at open, loudly, before any state is served.
#[test]
fn fuzzy_standby_refused() {
    for kind in [StrategyKind::Fuzzy, StrategyKind::PFuzzy] {
        let spec = FailoverSpec::smoke(kind, seed(0x7F00));
        let report = run_failover(&spec).unwrap_or_else(|v| panic!("{v}"));
        assert!(report.refused_not_tc, "{kind} must be refused: {report:?}");
    }
}
