//! Tests for the full five-transaction TPC-C mix (Delivery, OrderStatus,
//! StockLevel on top of the paper's NewOrder/Payment).

use std::sync::Arc;

use calc_common::types::Key;
use calc_engine::{Database, EngineConfig, StrategyKind, TxnOutcome};
use calc_txn::proc::ProcRegistry;
use calc_workload::tpcc::procs::{
    delivery_params, new_order_params, order_status_params, stock_level_params, DELIVERY_PROC,
    NEW_ORDER_PROC, ORDER_STATUS_PROC, STOCK_LEVEL_PROC,
};
use calc_workload::tpcc::{keys, tables, TpccConfig, TpccWorkload};

fn open(config: &TpccConfig, name: &str) -> Database {
    let dir = std::env::temp_dir().join(format!("calc-tpcc-full-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut registry = ProcRegistry::new();
    TpccWorkload::register_full_mix(&mut registry);
    let mut ec = EngineConfig::new(StrategyKind::Calc, config.capacity_hint(10_000), 140, dir);
    ec.workers = 4;
    Database::open(ec, registry).unwrap()
}

fn place_order(db: &Database, w: u32, d: u32, c: u32) -> u32 {
    let district = tables::District::decode(&db.get(keys::district(w, d)).unwrap()).unwrap();
    let o_id = district.next_o_id;
    let lines = [(1u32, w, 2u32), (2, w, 3)];
    let out = db.execute(NEW_ORDER_PROC, new_order_params(w, d, c, 7, &lines));
    assert!(matches!(out, TxnOutcome::Committed(_)));
    o_id
}

#[test]
fn delivery_consumes_oldest_order_and_credits_customer() {
    let config = TpccConfig::small();
    let db = open(&config, "delivery");
    TpccWorkload::new(config.clone(), 1).populate(&db);

    let o1 = place_order(&db, 0, 0, 5);
    let o2 = place_order(&db, 0, 0, 6);
    assert!(db.get(keys::new_order(0, 0, o1)).is_some());

    let balance_before = tables::Customer::decode(&db.get(keys::customer(0, 0, 5)).unwrap())
        .unwrap()
        .balance_cents;
    // Reconnaissance: oldest undelivered is o1, customer 5.
    let out = db.execute(DELIVERY_PROC, delivery_params(0, 0, 3, 99, o1, 5));
    assert!(matches!(out, TxnOutcome::Committed(_)), "{out:?}");

    // NEW_ORDER row consumed, carrier stamped, lines delivered, customer
    // credited with the order total, cursor advanced.
    assert!(db.get(keys::new_order(0, 0, o1)).is_none());
    assert!(db.get(keys::new_order(0, 0, o2)).is_some());
    let order = tables::Order::decode(&db.get(keys::order(0, 0, o1)).unwrap()).unwrap();
    assert_eq!(order.carrier_id, 3);
    let line = tables::OrderLine::decode(&db.get(keys::order_line(0, 0, o1, 0)).unwrap()).unwrap();
    assert_eq!(line.delivery_d, 99);
    let customer = tables::Customer::decode(&db.get(keys::customer(0, 0, 5)).unwrap()).unwrap();
    assert!(customer.balance_cents > balance_before);
    assert_eq!(customer.delivery_cnt, 1);
    let district = tables::District::decode(&db.get(keys::district(0, 0)).unwrap()).unwrap();
    assert_eq!(district.next_deliv_o_id, o1 + 1);
}

#[test]
fn delivery_with_stale_prediction_aborts_cleanly() {
    let config = TpccConfig::small();
    let db = open(&config, "stale");
    TpccWorkload::new(config.clone(), 2).populate(&db);
    let o1 = place_order(&db, 1, 1, 3);
    // Wrong predicted customer: must abort without side effects.
    let out = db.execute(DELIVERY_PROC, delivery_params(1, 1, 2, 50, o1, 99));
    assert!(matches!(out, TxnOutcome::Aborted(_)));
    assert!(db.get(keys::new_order(1, 1, o1)).is_some(), "rolled back");
    let district = tables::District::decode(&db.get(keys::district(1, 1)).unwrap()).unwrap();
    assert_eq!(district.next_deliv_o_id, o1);
    // Wrong predicted order id likewise.
    let out = db.execute(DELIVERY_PROC, delivery_params(1, 1, 2, 50, o1 + 7, 3));
    assert!(matches!(out, TxnOutcome::Aborted(_)));
    // Nothing to deliver in an untouched district.
    let out = db.execute(DELIVERY_PROC, delivery_params(1, 2, 2, 50, 1, 0));
    assert!(matches!(out, TxnOutcome::Aborted(_)));
}

#[test]
fn order_status_and_stock_level_are_read_only() {
    let config = TpccConfig::small();
    let db = open(&config, "readonly");
    TpccWorkload::new(config.clone(), 3).populate(&db);
    place_order(&db, 0, 1, 7);
    let before: Vec<_> = [
        keys::district(0, 1),
        keys::customer(0, 1, 7),
        keys::stock(0, 1),
    ]
    .iter()
    .map(|k| db.get(*k).unwrap())
    .collect();

    let out = db.execute(ORDER_STATUS_PROC, order_status_params(0, 1, 7));
    assert!(matches!(out, TxnOutcome::Committed(_)));
    let out = db.execute(STOCK_LEVEL_PROC, stock_level_params(0, 1, 100));
    assert!(matches!(out, TxnOutcome::Committed(_)));

    let after: Vec<_> = [
        keys::district(0, 1),
        keys::customer(0, 1, 7),
        keys::stock(0, 1),
    ]
    .iter()
    .map(|k| db.get(*k).unwrap())
    .collect();
    assert_eq!(before, after, "read-only transactions mutated state");
}

#[test]
fn full_mix_runs_with_checkpointing() {
    let config = TpccConfig::small();
    let db = open(&config, "mix");
    let mut wl = TpccWorkload::new(config.clone(), 4);
    wl.populate(&db);
    db.finalize_load(false).unwrap();

    let mut by_proc = std::collections::HashMap::new();
    let mut committed = 0u32;
    for i in 0..600 {
        let (proc, p) = wl.next_request_full_mix(&db);
        *by_proc.entry(proc).or_insert(0u32) += 1;
        if matches!(db.execute(proc, p), TxnOutcome::Committed(_)) {
            committed += 1;
        }
        if i == 300 {
            db.checkpoint_now().unwrap();
        }
    }
    assert!(committed > 500, "committed={committed}");
    // All five transaction types appeared.
    assert!(by_proc.len() >= 4, "mix too narrow: {by_proc:?}");
    assert!(by_proc.get(&NEW_ORDER_PROC).copied().unwrap_or(0) > 200);
    // Deliveries happened and advanced cursors somewhere.
    let mut delivered = 0u32;
    for w in 0..config.warehouses {
        for d in 0..config.districts {
            let district =
                tables::District::decode(&db.get(keys::district(w, d)).unwrap()).unwrap();
            delivered += district.next_deliv_o_id - 1;
        }
    }
    if by_proc.get(&DELIVERY_PROC).copied().unwrap_or(0) > 0 {
        assert!(delivered > 0, "no delivery advanced a cursor");
    }

    // The checkpoint is a valid, loadable snapshot.
    let metas = db.checkpoint_dir().scan().unwrap();
    assert_eq!(metas.len(), 1);
    assert!(metas[0].records > config.initial_records() as u64 / 2);
}

#[test]
fn full_mix_consistency_audit() {
    // TPC-C §3.3-style consistency conditions after a long full-mix run
    // with checkpoints interleaved: money columns, the order book, and the
    // delivery cursors must all agree.
    let config = TpccConfig::small();
    let db = open(&config, "audit");
    let mut wl = TpccWorkload::new(config.clone(), 7);
    wl.populate(&db);
    db.finalize_load(false).unwrap();
    for i in 0..800 {
        let (proc, p) = wl.next_request_full_mix(&db);
        db.execute(proc, p);
        if i % 250 == 249 {
            db.checkpoint_now().unwrap();
        }
    }

    let mut delivered_orders = 0u64;
    for w in 0..config.warehouses {
        // Condition 1 (§3.3.2.1 analog): W_YTD grew by exactly the sum of
        // the warehouse's district YTD growth — Payment adds the same
        // amount to both rows inside one transaction.
        let warehouse = tables::Warehouse::decode(&db.get(keys::warehouse(w)).unwrap()).unwrap();
        let district_ytd_delta: u64 = (0..config.districts)
            .map(|d| {
                tables::District::decode(&db.get(keys::district(w, d)).unwrap())
                    .unwrap()
                    .ytd_cents
                    - 3_000_000
            })
            .sum();
        assert_eq!(
            warehouse.ytd_cents - 30_000_000,
            district_ytd_delta,
            "w{w}: warehouse YTD out of sync with districts"
        );

        for d in 0..config.districts {
            let district =
                tables::District::decode(&db.get(keys::district(w, d)).unwrap()).unwrap();
            assert!(
                district.next_deliv_o_id <= district.next_o_id,
                "w{w} d{d}: delivery cursor ahead of order cursor"
            );
            // Conditions 2+3 (§3.3.2.2/.3 analog): every placed order has
            // an ORDER row; a NEW_ORDER row exists iff the order is still
            // undelivered; delivered orders are carrier-stamped with every
            // line delivery-dated, undelivered ones are not.
            for o in 1..district.next_o_id {
                let order =
                    tables::Order::decode(&db.get(keys::order(w, d, o)).unwrap()).unwrap();
                let undelivered = o >= district.next_deliv_o_id;
                assert_eq!(
                    db.get(keys::new_order(w, d, o)).is_some(),
                    undelivered,
                    "w{w} d{d} o{o}: NEW_ORDER row vs delivery cursor"
                );
                assert_eq!(
                    order.carrier_id == 0,
                    undelivered,
                    "w{w} d{d} o{o}: carrier stamp vs delivery cursor"
                );
                for ol in 0..order.ol_cnt {
                    let line = tables::OrderLine::decode(
                        &db.get(keys::order_line(w, d, o, ol)).unwrap(),
                    )
                    .unwrap();
                    assert_eq!(
                        line.delivery_d == 0,
                        undelivered,
                        "w{w} d{d} o{o} line {ol}: delivery date vs cursor"
                    );
                }
            }
            assert!(
                db.get(keys::new_order(w, d, district.next_o_id)).is_none(),
                "w{w} d{d}: NEW_ORDER row beyond the order cursor"
            );
            // Condition 4: the delivery cursor equals the number of
            // deliveries credited across this district's customers.
            let delivery_cnt: u32 = (0..config.customers_per_district)
                .map(|c| {
                    tables::Customer::decode(&db.get(keys::customer(w, d, c)).unwrap())
                        .unwrap()
                        .delivery_cnt
                })
                .sum();
            assert_eq!(
                delivery_cnt,
                district.next_deliv_o_id - 1,
                "w{w} d{d}: customer delivery counts vs cursor"
            );
            delivered_orders += (district.next_deliv_o_id - 1) as u64;
        }
    }
    // The audit is vacuous unless deliveries actually ran.
    assert!(delivered_orders > 0, "mix produced no deliveries");
}

#[test]
fn delivery_is_deterministic_for_replay() {
    // The same delivery params against the same state produce identical
    // results — required for command-log replay.
    let config = TpccConfig::small();
    let run = |name: &str| {
        let db = open(&config, name);
        TpccWorkload::new(config.clone(), 5).populate(&db);
        let o = place_order(&db, 0, 0, 2);
        db.execute(DELIVERY_PROC, delivery_params(0, 0, 4, 77, o, 2));
        (
            db.get(keys::customer(0, 0, 2)).unwrap(),
            db.get(keys::district(0, 0)).unwrap(),
            db.get(keys::order(0, 0, o)).unwrap(),
        )
    };
    assert_eq!(run("det-a"), run("det-b"));
}

#[test]
fn concurrent_full_mix_money_invariant() {
    // Warehouse YTD + customer balances respond consistently even with
    // deliveries crediting customers concurrently with payments.
    let config = TpccConfig::small();
    let db = Arc::new(open(&config, "concurrent"));
    let mut wl = TpccWorkload::new(config.clone(), 6);
    wl.populate(&db);
    let initial_balance_sum: i64 = (0..config.warehouses)
        .flat_map(|w| (0..config.districts).map(move |d| (w, d)))
        .flat_map(|(w, d)| (0..config.customers_per_district).map(move |c| (w, d, c)))
        .map(|(w, d, c)| {
            tables::Customer::decode(&db.get(keys::customer(w, d, c)).unwrap())
                .unwrap()
                .balance_cents
        })
        .sum();
    for _ in 0..400 {
        let (proc, p) = wl.next_request_full_mix(&db);
        db.execute(proc, p);
    }
    // Invariant: every customer row still decodes and the totals moved in
    // a sane direction (payments subtract, deliveries add back order
    // totals).
    let final_balance_sum: i64 = (0..config.warehouses)
        .flat_map(|w| (0..config.districts).map(move |d| (w, d)))
        .flat_map(|(w, d)| (0..config.customers_per_district).map(move |c| (w, d, c)))
        .map(|(w, d, c)| {
            tables::Customer::decode(&db.get(keys::customer(w, d, c)).unwrap())
                .unwrap()
                .balance_cents
        })
        .sum();
    assert_ne!(initial_balance_sum, final_balance_sum);
    let _ = Key(0);
}
