//! Benchmark workloads from the paper's evaluation (§5).
//!
//! * [`micro`] — the microbenchmark of §5.1: a collection of 100-byte
//!   records with 8-byte keys; each transaction reads and updates 10
//!   records and does some simple computation. Variants: 0.001%
//!   long-running batch-write transactions (§5.1's second version, the
//!   workload that exposes IPP/Zig-Zag's physical-point-of-consistency
//!   stall), and hot-set write locality (10%/20%/50% of records modified
//!   between checkpoints, §5.1.2).
//! * [`tpcc`] — TPC-C at a configurable warehouse count, running the 50%
//!   NewOrder / 50% Payment mix of §5.2 ("these two transactions make up
//!   88% of the default TPC-C mix and are the most relevant ... since
//!   they are write-intensive").
//! * [`spin`] — calibrated deterministic busywork, used for the
//!   microbenchmark's "simple computing operations" and the ~2-second
//!   long transactions (iteration counts ride in the parameters, so
//!   replay is deterministic).

#![warn(missing_docs)]

pub mod micro;
pub mod spin;
pub mod tpcc;

pub use micro::{MicroConfig, MicroWorkload};
pub use tpcc::{TpccConfig, TpccWorkload};
