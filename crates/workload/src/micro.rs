//! The microbenchmark of §5.1.
//!
//! "The microbenchmark operates on a collection of 20 million records,
//! where each record is 100 bytes and has an 8 byte key. ... The first
//! version consists entirely of transactions that read and update 10
//! records from the database, and do some simple computing operations.
//! The second version contains 99.999% of transactions that are the same
//! type as the first version, but 0.001% of transactions are long-running
//! batch-writes which take approximately two seconds to complete. We keep
//! contention low for both versions."
//!
//! Write locality (§5.1.2) is modelled with a hot set: when
//! `hot_fraction < 1.0`, update keys are drawn from the first
//! `hot_fraction × db_size` keys, so the records modified between two
//! checkpoints are confined to that subset.

use std::sync::Arc;

use calc_common::rng::SplitMix;
use calc_common::types::Key;
use calc_engine::Database;
use calc_txn::proc::{params, AbortReason, LockRequest, ProcId, Procedure, TxnOps};

use crate::spin::spin;

/// Procedure id of the 10-record read/update transaction.
pub const MICRO_PROC: ProcId = ProcId(10);
/// Procedure id of the long-running batch-write transaction.
pub const LONG_PROC: ProcId = ProcId(11);

/// Microbenchmark parameters.
#[derive(Clone, Debug)]
pub struct MicroConfig {
    /// Number of records (paper: 20 M; scale to the host).
    pub db_size: u64,
    /// Record payload size in bytes (paper: 100).
    pub record_size: usize,
    /// Records read+updated per transaction (paper: 10).
    pub ops_per_txn: usize,
    /// Busywork iterations per normal transaction ("simple computing
    /// operations").
    pub txn_spin: u64,
    /// Probability of a long-running batch-write (paper: 0.001% = 1e-5).
    pub long_txn_prob: f64,
    /// Busywork iterations for a long transaction (calibrate to ~2 s for
    /// the paper's shape; scaled down in quick runs).
    pub long_txn_spin: u64,
    /// Records written by a long transaction.
    pub long_txn_batch: usize,
    /// Fraction of the keyspace eligible for updates (1.0 = uniform;
    /// 0.1 → "10% of records modified since last checkpoint").
    pub hot_fraction: f64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            db_size: 1_000_000,
            record_size: 100,
            ops_per_txn: 10,
            txn_spin: 64,
            long_txn_prob: 0.0,
            long_txn_spin: 50_000_000,
            long_txn_batch: 1000,
            hot_fraction: 1.0,
        }
    }
}

/// Request generator + procedure definitions for the microbenchmark.
pub struct MicroWorkload {
    config: MicroConfig,
    rng: SplitMix,
}

impl MicroWorkload {
    /// Creates a generator with a deterministic seed.
    pub fn new(config: MicroConfig, seed: u64) -> Self {
        MicroWorkload {
            config,
            rng: SplitMix::new(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MicroConfig {
        &self.config
    }

    /// Registers the microbenchmark's procedures.
    pub fn register(registry: &mut calc_txn::proc::ProcRegistry, config: &MicroConfig) {
        registry.register(Arc::new(MicroProc {
            record_size: config.record_size,
        }));
        registry.register(Arc::new(LongBatchProc {
            record_size: config.record_size,
        }));
    }

    /// Populates the database with `db_size` records.
    pub fn populate(&self, db: &Database) {
        let mut payload = vec![0u8; self.config.record_size];
        for k in 0..self.config.db_size {
            fill_payload(&mut payload, k, 0);
            db.load_initial(Key(k), &payload)
                .expect("store sized for the workload");
        }
    }

    /// Draws an update-eligible key.
    fn update_key(&mut self) -> u64 {
        let hot = ((self.config.db_size as f64) * self.config.hot_fraction).max(1.0) as u64;
        self.rng.next_below(hot)
    }

    /// Generates the next transaction request.
    pub fn next_request(&mut self) -> (ProcId, Arc<[u8]>) {
        if self.config.long_txn_prob > 0.0 && self.rng.chance(self.config.long_txn_prob) {
            // Long batch write over a contiguous cold-range chunk (keeps
            // contention low, as the paper prescribes).
            let batch = self.config.long_txn_batch as u64;
            let start = self.rng.next_below(self.config.db_size.saturating_sub(batch).max(1));
            let p = params::Writer::new()
                .u64(start)
                .u64(batch)
                .u64(self.config.long_txn_spin)
                .u64(self.rng.next_u64()) // value seed
                .finish();
            (LONG_PROC, p)
        } else {
            let mut w = params::Writer::new()
                .u32(self.config.ops_per_txn as u32)
                .u64(self.config.txn_spin)
                .u64(self.rng.next_u64()); // value seed
            let mut used = Vec::with_capacity(self.config.ops_per_txn);
            while used.len() < self.config.ops_per_txn {
                let k = self.update_key();
                if !used.contains(&k) {
                    used.push(k);
                }
            }
            for k in &used {
                w = w.u64(*k);
            }
            (MICRO_PROC, w.finish())
        }
    }
}

fn fill_payload(buf: &mut [u8], key: u64, seed: u64) {
    // Deterministic 100-byte payload derived from (key, seed).
    let mut x = key ^ seed.rotate_left(17) ^ 0xC0FF_EE00_D15E_A5E5;
    for chunk in buf.chunks_mut(8) {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mixed = (x ^ (x >> 31)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        let bytes = mixed.to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&bytes[..n]);
    }
}

/// The 10-record read/update transaction.
///
/// Params: `ops:u32 | spin:u64 | seed:u64 | key:u64 × ops`.
struct MicroProc {
    record_size: usize,
}

impl Procedure for MicroProc {
    fn id(&self) -> ProcId {
        MICRO_PROC
    }

    fn name(&self) -> &'static str {
        "micro-update"
    }

    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        let ops = r.u32()? as usize;
        let _spin = r.u64()?;
        let _seed = r.u64()?;
        let mut writes = Vec::with_capacity(ops);
        for _ in 0..ops {
            writes.push(Key(r.u64()?));
        }
        Ok(LockRequest {
            reads: Vec::new(),
            writes,
        })
    }

    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let n = r.u32()? as usize;
        let spin_iters = r.u64()?;
        let seed = r.u64()?;
        let mut buf = vec![0u8; self.record_size];
        let mut acc = seed;
        for _ in 0..n {
            let key = Key(r.u64()?);
            let old = ops
                .get(key)
                .ok_or_else(|| AbortReason::Logic(format!("missing record {key}")))?;
            // "Simple computing operations": fold the old value, spin a
            // little, derive the new value from both.
            acc = acc.wrapping_add(u64::from_le_bytes(old[..8].try_into().unwrap()));
            acc = spin(acc, spin_iters);
            fill_payload(&mut buf, key.0, acc);
            ops.put(key, &buf);
        }
        Ok(())
    }
}

/// The long-running batch-write transaction (~2 s in the paper's setup).
///
/// Params: `start:u64 | count:u64 | spin:u64 | seed:u64`.
struct LongBatchProc {
    record_size: usize,
}

impl Procedure for LongBatchProc {
    fn id(&self) -> ProcId {
        LONG_PROC
    }

    fn name(&self) -> &'static str {
        "micro-long-batch"
    }

    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        let start = r.u64()?;
        let count = r.u64()?;
        Ok(LockRequest {
            reads: Vec::new(),
            writes: (start..start + count).map(Key).collect(),
        })
    }

    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let start = r.u64()?;
        let count = r.u64()?;
        let spin_iters = r.u64()?;
        let seed = r.u64()?;
        // The long compute happens while holding all locks — that is what
        // delays physical points of consistency for IPP/Zig-Zag.
        let folded = spin(seed, spin_iters);
        let mut buf = vec![0u8; self.record_size];
        for k in start..start + count {
            fill_payload(&mut buf, k, folded);
            ops.put(Key(k), &buf);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calc_engine::{EngineConfig, StrategyKind, TxnOutcome};
    use calc_txn::proc::ProcRegistry;

    fn quick_config() -> MicroConfig {
        MicroConfig {
            db_size: 1000,
            record_size: 100,
            ops_per_txn: 10,
            txn_spin: 8,
            long_txn_prob: 0.0,
            long_txn_spin: 1000,
            long_txn_batch: 50,
            hot_fraction: 1.0,
        }
    }

    fn open_db(config: &MicroConfig, name: &str) -> Database {
        let dir = std::env::temp_dir().join(format!(
            "calc-micro-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut registry = ProcRegistry::new();
        MicroWorkload::register(&mut registry, config);
        let mut ec = EngineConfig::new(StrategyKind::Calc, config.db_size as usize, 100, dir);
        ec.workers = 4;
        Database::open(ec, registry).unwrap()
    }

    #[test]
    fn populate_and_run_transactions() {
        let config = quick_config();
        let db = open_db(&config, "run");
        let mut wl = MicroWorkload::new(config.clone(), 1);
        wl.populate(&db);
        assert_eq!(db.record_count(), 1000);
        for _ in 0..50 {
            let (proc, p) = wl.next_request();
            let out = db.execute(proc, p);
            assert!(matches!(out, TxnOutcome::Committed(_)), "{out:?}");
        }
        assert_eq!(db.metrics().committed(), 50);
    }

    #[test]
    fn generator_is_deterministic() {
        let config = quick_config();
        let mut a = MicroWorkload::new(config.clone(), 7);
        let mut b = MicroWorkload::new(config, 7);
        for _ in 0..100 {
            let (pa, ba) = a.next_request();
            let (pb, bb) = b.next_request();
            assert_eq!(pa, pb);
            assert_eq!(&ba[..], &bb[..]);
        }
    }

    #[test]
    fn hot_fraction_bounds_update_keys() {
        let mut config = quick_config();
        config.hot_fraction = 0.1;
        let mut wl = MicroWorkload::new(config.clone(), 3);
        for _ in 0..200 {
            let (_, p) = wl.next_request();
            let mut r = params::Reader::new(&p);
            let n = r.u32().unwrap();
            r.u64().unwrap();
            r.u64().unwrap();
            for _ in 0..n {
                let k = r.u64().unwrap();
                assert!(k < 100, "key {k} outside 10% hot set");
            }
        }
    }

    #[test]
    fn long_transactions_appear_at_configured_rate() {
        let mut config = quick_config();
        config.long_txn_prob = 0.2;
        let mut wl = MicroWorkload::new(config, 9);
        let longs = (0..1000)
            .filter(|_| wl.next_request().0 == LONG_PROC)
            .count();
        assert!((100..320).contains(&longs), "long txn count {longs}");
    }

    #[test]
    fn long_batch_writes_all_records() {
        let config = MicroConfig {
            long_txn_prob: 1.0,
            ..quick_config()
        };
        let db = open_db(&config, "long");
        let wl = MicroWorkload::new(config.clone(), 1);
        wl.populate(&db);
        let before: Vec<_> = (0..1000u64).map(|k| db.get(Key(k)).unwrap()).collect();
        let mut wl = MicroWorkload::new(config, 2);
        let (proc, p) = wl.next_request();
        assert_eq!(proc, LONG_PROC);
        let out = db.execute(proc, p.clone());
        assert!(matches!(out, TxnOutcome::Committed(_)));
        let mut r = params::Reader::new(&p);
        let start = r.u64().unwrap();
        let count = r.u64().unwrap();
        let mut changed = 0;
        for k in start..start + count {
            if db.get(Key(k)).unwrap() != before[k as usize] {
                changed += 1;
            }
        }
        assert_eq!(changed, count);
    }

    #[test]
    fn distinct_keys_per_transaction() {
        let config = quick_config();
        let mut wl = MicroWorkload::new(config, 5);
        for _ in 0..50 {
            let (_, p) = wl.next_request();
            let mut r = params::Reader::new(&p);
            let n = r.u32().unwrap();
            r.u64().unwrap();
            r.u64().unwrap();
            let keys: Vec<u64> = (0..n).map(|_| r.u64().unwrap()).collect();
            let mut dedup = keys.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), keys.len(), "duplicate keys in one txn");
        }
    }
}
