//! Calibrated deterministic busywork.
//!
//! The microbenchmark's transactions "do some simple computing
//! operations", and 0.001% of them are "long-running batch-writes which
//! take approximately two seconds" (§5.1). Wall-clock sleeps would be
//! non-deterministic under replay, so work is expressed as an *iteration
//! count* of a fixed mixing loop carried in the transaction parameters;
//! [`calibrate`] measures how many iterations approximate a target
//! duration on this host.

use std::time::{Duration, Instant};

/// Runs `iters` rounds of a splitmix-style mixing loop seeded with `seed`
/// and returns the folded result (so the optimizer cannot remove it).
#[inline]
pub fn spin(seed: u64, iters: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
    }
    x
}

/// Measures how many [`spin`] iterations take roughly `target` on this
/// host. Deterministic work, host-calibrated duration.
pub fn calibrate(target: Duration) -> u64 {
    // Measure a fixed probe batch, then scale.
    let probe = 2_000_000u64;
    let start = Instant::now();
    std::hint::black_box(spin(42, probe));
    let elapsed = start.elapsed().max(Duration::from_micros(10));
    let iters_per_sec = probe as f64 / elapsed.as_secs_f64();
    (iters_per_sec * target.as_secs_f64()).max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_is_deterministic() {
        assert_eq!(spin(7, 1000), spin(7, 1000));
        assert_ne!(spin(7, 1000), spin(8, 1000));
        assert_ne!(spin(7, 1000), spin(7, 1001));
    }

    #[test]
    fn calibrate_lands_in_the_ballpark() {
        let target = Duration::from_millis(50);
        let iters = calibrate(target);
        let start = Instant::now();
        std::hint::black_box(spin(1, iters));
        let actual = start.elapsed();
        // Debug builds and noisy CI: accept a factor of 4 either way.
        assert!(
            actual > target / 4 && actual < target * 4,
            "calibrated {iters} iters took {actual:?}, target {target:?}"
        );
    }
}
