//! TPC-C composite keys, bit-packed into `u64`.
//!
//! Layout: table tag in bits 56..64; fields below, documented per
//! constructor. Capacity bounds (warehouse ≤ 65 535, district ≤ 255,
//! customer ≤ 65 535, item ≤ 4 294 967 295, order id ≤ 16 777 215 per
//! district) comfortably exceed the paper's 50-warehouse scale.

use calc_common::types::Key;

/// Table tags.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Table {
    Warehouse = 1,
    District = 2,
    Customer = 3,
    Stock = 4,
    Item = 5,
    Order = 6,
    OrderLine = 7,
    NewOrder = 8,
    History = 9,
}

#[inline]
fn tag(t: Table) -> u64 {
    (t as u64) << 56
}

/// Which table a key belongs to (`None` for malformed tags).
pub fn table_of(key: Key) -> Option<Table> {
    match key.0 >> 56 {
        1 => Some(Table::Warehouse),
        2 => Some(Table::District),
        3 => Some(Table::Customer),
        4 => Some(Table::Stock),
        5 => Some(Table::Item),
        6 => Some(Table::Order),
        7 => Some(Table::OrderLine),
        8 => Some(Table::NewOrder),
        9 => Some(Table::History),
        _ => None,
    }
}

/// `WAREHOUSE(w)` — `w` in bits 0..16.
pub fn warehouse(w: u32) -> Key {
    debug_assert!(w < (1 << 16));
    Key(tag(Table::Warehouse) | w as u64)
}

/// `DISTRICT(w, d)` — `w` in bits 8..24, `d` in bits 0..8.
pub fn district(w: u32, d: u32) -> Key {
    debug_assert!(w < (1 << 16) && d < (1 << 8));
    Key(tag(Table::District) | ((w as u64) << 8) | d as u64)
}

/// `CUSTOMER(w, d, c)` — `w` 24..40, `d` 16..24, `c` 0..16.
pub fn customer(w: u32, d: u32, c: u32) -> Key {
    debug_assert!(w < (1 << 16) && d < (1 << 8) && c < (1 << 16));
    Key(tag(Table::Customer) | ((w as u64) << 24) | ((d as u64) << 16) | c as u64)
}

/// `STOCK(w, i)` — `w` 32..48, `i` 0..32.
pub fn stock(w: u32, i: u32) -> Key {
    debug_assert!(w < (1 << 16));
    Key(tag(Table::Stock) | ((w as u64) << 32) | i as u64)
}

/// `ITEM(i)` — `i` in bits 0..32.
pub fn item(i: u32) -> Key {
    Key(tag(Table::Item) | i as u64)
}

/// `ORDER(w, d, o)` — `w` 40..56, `d` 32..40, `o` 0..32.
pub fn order(w: u32, d: u32, o: u32) -> Key {
    debug_assert!(w < (1 << 16) && d < (1 << 8));
    Key(tag(Table::Order) | ((w as u64) << 40) | ((d as u64) << 32) | o as u64)
}

/// `NEW_ORDER(w, d, o)` — same layout as [`order`].
pub fn new_order(w: u32, d: u32, o: u32) -> Key {
    debug_assert!(w < (1 << 16) && d < (1 << 8));
    Key(tag(Table::NewOrder) | ((w as u64) << 40) | ((d as u64) << 32) | o as u64)
}

/// `ORDER_LINE(w, d, o, ol)` — `w` 40..56, `d` 32..40, `o` 8..32 (24
/// bits), `ol` 0..8.
pub fn order_line(w: u32, d: u32, o: u32, ol: u32) -> Key {
    debug_assert!(w < (1 << 16) && d < (1 << 8) && o < (1 << 24) && ol < (1 << 8));
    Key(tag(Table::OrderLine) | ((w as u64) << 40) | ((d as u64) << 32) | ((o as u64) << 8) | ol as u64)
}

/// `HISTORY(h)` — a generator-assigned unique id in bits 0..48.
pub fn history(h: u64) -> Key {
    debug_assert!(h < (1 << 48));
    Key(tag(Table::History) | h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn keys_are_unique_across_tables_and_fields() {
        let mut seen = HashSet::new();
        for w in 0..4 {
            assert!(seen.insert(warehouse(w)));
            for d in 0..4 {
                assert!(seen.insert(district(w, d)));
                for c in 0..4 {
                    assert!(seen.insert(customer(w, d, c)));
                }
                for o in 0..4 {
                    assert!(seen.insert(order(w, d, o)));
                    assert!(seen.insert(new_order(w, d, o)));
                    for ol in 0..3 {
                        assert!(seen.insert(order_line(w, d, o, ol)));
                    }
                }
            }
            for i in 0..8 {
                assert!(seen.insert(stock(w, i)));
            }
        }
        for i in 0..8 {
            assert!(seen.insert(item(i)));
        }
        for h in 0..8 {
            assert!(seen.insert(history(h)));
        }
    }

    #[test]
    fn table_of_roundtrip() {
        assert_eq!(table_of(warehouse(3)), Some(Table::Warehouse));
        assert_eq!(table_of(customer(1, 2, 3)), Some(Table::Customer));
        assert_eq!(table_of(order_line(1, 2, 3, 4)), Some(Table::OrderLine));
        assert_eq!(table_of(history(42)), Some(Table::History));
        assert_eq!(table_of(calc_common::types::Key(0)), None);
    }

    #[test]
    fn full_scale_fields_fit() {
        // Paper scale: 50 warehouses, 10 districts, 3000 customers,
        // 100k items, millions of orders.
        let k1 = order_line(49, 9, 1_000_000, 14);
        let k2 = order_line(49, 9, 1_000_000, 15);
        assert_ne!(k1, k2);
        assert_ne!(stock(49, 99_999), stock(48, 99_999));
    }
}
