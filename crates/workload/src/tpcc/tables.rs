//! TPC-C row encodings.
//!
//! Rows are little-endian structs with fixed-size filler standing in for
//! the spec's character columns, keeping record sizes realistic (the
//! variable-length-capable storage engine is exercised by the differing
//! sizes across tables — one of the paper's criticisms of Zig-Zag/IPP's
//! original fixed-width array storage is that real schemas are not
//! uniform).
//!
//! Money is integer cents; taxes and discounts are basis points.

use calc_txn::proc::params::{Reader, Writer};
use calc_txn::proc::AbortReason;

macro_rules! row {
    (
        $(#[$meta:meta])*
        pub struct $name:ident { $(pub $field:ident: $ty:tt),+ $(,)? }
        filler: $filler:expr
    ) => {
        $(#[$meta])*
        #[derive(Clone, Debug, PartialEq, Eq, Default)]
        pub struct $name {
            $(
                #[allow(missing_docs)]
                pub $field: $ty,
            )+
        }

        impl $name {
            /// Serializes the row (with filler padding).
            pub fn encode(&self) -> Vec<u8> {
                let mut w = Writer::new();
                $( w = row!(@write w, self.$field, $ty); )+
                let mut buf: Vec<u8> = w.finish().to_vec();
                buf.resize(buf.len() + $filler, 0xEE);
                buf
            }

            /// Deserializes the row.
            pub fn decode(buf: &[u8]) -> Result<Self, AbortReason> {
                let mut r = Reader::new(buf);
                Ok($name {
                    $( $field: row!(@read r, $ty), )+
                })
            }
        }
    };
    (@write $w:expr, $v:expr, u64) => { $w.u64($v) };
    (@write $w:expr, $v:expr, u32) => { $w.u32($v) };
    (@write $w:expr, $v:expr, i64) => { $w.u64($v as u64) };
    (@read $r:expr, u64) => { $r.u64()? };
    (@read $r:expr, u32) => { $r.u32()? };
    (@read $r:expr, i64) => { $r.u64()? as i64 };
}

row! {
    /// WAREHOUSE row.
    pub struct Warehouse {
        pub ytd_cents: u64,
        pub tax_bp: u32,
    }
    filler: 77 // name, street, city, state, zip
}

row! {
    /// DISTRICT row. `next_deliv_o_id` is the per-district delivery
    /// cursor — the standard way to express TPC-C's "oldest undelivered
    /// order" over a key-value store without a secondary index.
    pub struct District {
        pub next_o_id: u32,
        pub next_deliv_o_id: u32,
        pub ytd_cents: u64,
        pub tax_bp: u32,
    }
    filler: 79
}

row! {
    /// CUSTOMER row.
    pub struct Customer {
        pub balance_cents: i64,
        pub ytd_payment_cents: u64,
        pub payment_cnt: u32,
        pub delivery_cnt: u32,
        pub discount_bp: u32,
        pub credit_ok: u32,
    }
    filler: 120 // name, address, phone, since, data
}

row! {
    /// STOCK row.
    pub struct Stock {
        pub quantity: u32,
        pub ytd: u64,
        pub order_cnt: u32,
        pub remote_cnt: u32,
    }
    filler: 50 // dist_01..dist_10 excerpts
}

row! {
    /// ITEM row.
    pub struct Item {
        pub price_cents: u64,
        pub im_id: u32,
    }
    filler: 38 // name, data
}

row! {
    /// ORDER row.
    pub struct Order {
        pub c_id: u32,
        pub entry_d: u64,
        pub ol_cnt: u32,
        pub carrier_id: u32,
        pub all_local: u32,
    }
    filler: 8
}

row! {
    /// NEW_ORDER row (presence marker).
    pub struct NewOrderRow {
        pub o_id: u32,
    }
    filler: 4
}

row! {
    /// ORDER_LINE row.
    pub struct OrderLine {
        pub i_id: u32,
        pub supply_w_id: u32,
        pub quantity: u32,
        pub amount_cents: u64,
        pub delivery_d: u64,
    }
    filler: 24 // dist_info
}

row! {
    /// HISTORY row.
    pub struct History {
        pub w_id: u32,
        pub d_id: u32,
        pub c_id: u32,
        pub amount_cents: u64,
        pub date: u64,
    }
    filler: 24
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warehouse_roundtrip() {
        let w = Warehouse {
            ytd_cents: 30_000_000,
            tax_bp: 725,
        };
        let enc = w.encode();
        assert!(enc.len() > 80, "realistic size with filler: {}", enc.len());
        assert_eq!(Warehouse::decode(&enc).unwrap(), w);
    }

    #[test]
    fn customer_roundtrip_with_negative_balance() {
        let c = Customer {
            balance_cents: -1234,
            ytd_payment_cents: 1000,
            payment_cnt: 3,
            delivery_cnt: 1,
            discount_bp: 250,
            credit_ok: 1,
        };
        assert_eq!(Customer::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn all_rows_roundtrip() {
        assert_eq!(
            District::decode(
                &District { next_o_id: 3001, next_deliv_o_id: 5, ytd_cents: 9, tax_bp: 100 }
                    .encode()
            )
                .unwrap()
                .next_o_id,
            3001
        );
        assert_eq!(
            Stock::decode(&Stock { quantity: 50, ytd: 7, order_cnt: 2, remote_cnt: 0 }.encode())
                .unwrap()
                .quantity,
            50
        );
        assert_eq!(
            Item::decode(&Item { price_cents: 999, im_id: 5 }.encode())
                .unwrap()
                .price_cents,
            999
        );
        assert_eq!(
            Order::decode(
                &Order { c_id: 7, entry_d: 123, ol_cnt: 9, carrier_id: 0, all_local: 1 }.encode()
            )
            .unwrap()
            .ol_cnt,
            9
        );
        assert_eq!(
            OrderLine::decode(
                &OrderLine {
                    i_id: 4,
                    supply_w_id: 1,
                    quantity: 5,
                    amount_cents: 4995,
                    delivery_d: 0
                }
                .encode()
            )
            .unwrap()
            .amount_cents,
            4995
        );
        assert_eq!(
            History::decode(
                &History { w_id: 1, d_id: 2, c_id: 3, amount_cents: 100, date: 9 }.encode()
            )
            .unwrap()
            .c_id,
            3
        );
        assert_eq!(
            NewOrderRow::decode(&NewOrderRow { o_id: 42 }.encode())
                .unwrap()
                .o_id,
            42
        );
    }

    #[test]
    fn truncated_row_fails_cleanly() {
        let enc = Warehouse::default().encode();
        assert!(Warehouse::decode(&enc[..4]).is_err());
    }
}
