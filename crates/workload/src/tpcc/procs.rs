//! The NewOrder and Payment stored procedures.
//!
//! Both pre-declare their lock footprints from their parameters. Keys
//! whose ids are assigned *inside* the transaction (order / order-line /
//! new-order rows keyed by the district's `next_o_id`, history rows keyed
//! by a client-supplied unique id) need no locks of their own: any two
//! transactions that could touch the same derived keys already serialize
//! on the district (respectively customer) exclusive lock.
//!
//! NewOrder implements TPC-C's 1% rollback rule: a parameter may carry the
//! invalid item sentinel, and the transaction aborts when the item lookup
//! fails — exercising the engine's rollback path exactly as the spec
//! intends.

use calc_txn::proc::params::{Reader, Writer};
use calc_txn::proc::{AbortReason, LockRequest, ProcId, Procedure, TxnOps};

use super::keys;
use super::tables::*;

/// Procedure id of NewOrder.
pub const NEW_ORDER_PROC: ProcId = ProcId(20);
/// Procedure id of Payment.
pub const PAYMENT_PROC: ProcId = ProcId(21);
/// Item-id sentinel triggering the 1% rollback.
pub const INVALID_ITEM: u32 = u32::MAX;

/// TPC-C NewOrder.
///
/// Params: `w:u32 d:u32 c:u32 entry_d:u64 ol_cnt:u32` then per line
/// `item:u32 supply_w:u32 qty:u32`.
pub struct NewOrderProc;

impl Procedure for NewOrderProc {
    fn id(&self) -> ProcId {
        NEW_ORDER_PROC
    }

    fn name(&self) -> &'static str {
        "tpcc-new-order"
    }

    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = Reader::new(p);
        let w = r.u32()?;
        let d = r.u32()?;
        let c = r.u32()?;
        let _entry_d = r.u64()?;
        let ol_cnt = r.u32()?;
        let mut req = LockRequest {
            reads: vec![keys::warehouse(w), keys::customer(w, d, c)],
            writes: vec![keys::district(w, d)],
        };
        for _ in 0..ol_cnt {
            let item = r.u32()?;
            let supply_w = r.u32()?;
            let _qty = r.u32()?;
            req.reads.push(keys::item(item));
            req.writes.push(keys::stock(supply_w, item));
        }
        Ok(req)
    }

    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = Reader::new(p);
        let w = r.u32()?;
        let d = r.u32()?;
        let c = r.u32()?;
        let entry_d = r.u64()?;
        let ol_cnt = r.u32()?;

        let warehouse = Warehouse::decode(
            &ops.get(keys::warehouse(w))
                .ok_or_else(|| AbortReason::Logic(format!("no warehouse {w}")))?,
        )?;
        let customer = Customer::decode(
            &ops.get(keys::customer(w, d, c))
                .ok_or_else(|| AbortReason::Logic(format!("no customer {w}/{d}/{c}")))?,
        )?;
        let district_key = keys::district(w, d);
        let mut district = District::decode(
            &ops.get(district_key)
                .ok_or_else(|| AbortReason::Logic(format!("no district {w}/{d}")))?,
        )?;
        let o_id = district.next_o_id;
        district.next_o_id += 1;
        ops.put(district_key, &district.encode());

        let mut all_local = 1u32;
        let mut total_cents = 0u64;
        for ol in 0..ol_cnt {
            let i_id = r.u32()?;
            let supply_w = r.u32()?;
            let qty = r.u32()?;
            // TPC-C 1% rollback: unused item number aborts the whole
            // transaction (after some writes have happened — rollback is
            // real work).
            let item = ops
                .get(keys::item(i_id))
                .ok_or_else(|| AbortReason::Logic(format!("unused item number {i_id}")))
                .and_then(|v| Item::decode(&v))?;
            if supply_w != w {
                all_local = 0;
            }
            let stock_key = keys::stock(supply_w, i_id);
            let mut stock = Stock::decode(
                &ops.get(stock_key)
                    .ok_or_else(|| AbortReason::Logic(format!("no stock {supply_w}/{i_id}")))?,
            )?;
            stock.quantity = if stock.quantity >= qty + 10 {
                stock.quantity - qty
            } else {
                stock.quantity + 91 - qty
            };
            stock.ytd += qty as u64;
            stock.order_cnt += 1;
            if supply_w != w {
                stock.remote_cnt += 1;
            }
            ops.put(stock_key, &stock.encode());

            let amount = qty as u64 * item.price_cents;
            total_cents += amount;
            ops.insert(
                keys::order_line(w, d, o_id, ol),
                &OrderLine {
                    i_id,
                    supply_w_id: supply_w,
                    quantity: qty,
                    amount_cents: amount,
                    delivery_d: 0,
                }
                .encode(),
            );
        }
        // Total with taxes/discount — computed to mirror the spec's math;
        // folded into the order row via ol_cnt etc.
        let _ = total_cents as f64
            * (1.0 + (warehouse.tax_bp + district_tax(&district)) as f64 / 10_000.0)
            * (1.0 - customer.discount_bp as f64 / 10_000.0);

        ops.insert(
            keys::order(w, d, o_id),
            &Order {
                c_id: c,
                entry_d,
                ol_cnt,
                carrier_id: 0,
                all_local,
            }
            .encode(),
        );
        ops.insert(keys::new_order(w, d, o_id), &NewOrderRow { o_id }.encode());
        Ok(())
    }
}

#[inline]
fn district_tax(d: &District) -> u32 {
    d.tax_bp
}

/// TPC-C Payment.
///
/// Params: `w:u32 d:u32 c:u32 amount_cents:u64 h_id:u64 date:u64`.
pub struct PaymentProc;

impl Procedure for PaymentProc {
    fn id(&self) -> ProcId {
        PAYMENT_PROC
    }

    fn name(&self) -> &'static str {
        "tpcc-payment"
    }

    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = Reader::new(p);
        let w = r.u32()?;
        let d = r.u32()?;
        let c = r.u32()?;
        Ok(LockRequest {
            reads: vec![],
            writes: vec![
                keys::warehouse(w),
                keys::district(w, d),
                keys::customer(w, d, c),
            ],
        })
    }

    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = Reader::new(p);
        let w = r.u32()?;
        let d = r.u32()?;
        let c = r.u32()?;
        let amount = r.u64()?;
        let h_id = r.u64()?;
        let date = r.u64()?;

        let w_key = keys::warehouse(w);
        let mut warehouse = Warehouse::decode(
            &ops.get(w_key)
                .ok_or_else(|| AbortReason::Logic(format!("no warehouse {w}")))?,
        )?;
        warehouse.ytd_cents += amount;
        ops.put(w_key, &warehouse.encode());

        let d_key = keys::district(w, d);
        let mut district = District::decode(
            &ops.get(d_key)
                .ok_or_else(|| AbortReason::Logic(format!("no district {w}/{d}")))?,
        )?;
        district.ytd_cents += amount;
        ops.put(d_key, &district.encode());

        let c_key = keys::customer(w, d, c);
        let mut customer = Customer::decode(
            &ops.get(c_key)
                .ok_or_else(|| AbortReason::Logic(format!("no customer {w}/{d}/{c}")))?,
        )?;
        customer.balance_cents -= amount as i64;
        customer.ytd_payment_cents += amount;
        customer.payment_cnt += 1;
        ops.put(c_key, &customer.encode());

        ops.insert(
            keys::history(h_id),
            &History {
                w_id: w,
                d_id: d,
                c_id: c,
                amount_cents: amount,
                date,
            }
            .encode(),
        );
        Ok(())
    }
}

/// Builds NewOrder params.
#[allow(clippy::too_many_arguments)]
pub fn new_order_params(
    w: u32,
    d: u32,
    c: u32,
    entry_d: u64,
    lines: &[(u32, u32, u32)], // (item, supply_w, qty)
) -> std::sync::Arc<[u8]> {
    let mut wtr = Writer::new()
        .u32(w)
        .u32(d)
        .u32(c)
        .u64(entry_d)
        .u32(lines.len() as u32);
    for &(item, supply_w, qty) in lines {
        wtr = wtr.u32(item).u32(supply_w).u32(qty);
    }
    wtr.finish()
}

/// Builds Payment params.
pub fn payment_params(
    w: u32,
    d: u32,
    c: u32,
    amount_cents: u64,
    h_id: u64,
    date: u64,
) -> std::sync::Arc<[u8]> {
    Writer::new()
        .u32(w)
        .u32(d)
        .u32(c)
        .u64(amount_cents)
        .u64(h_id)
        .u64(date)
        .finish()
}

/// Procedure id of Delivery.
pub const DELIVERY_PROC: ProcId = ProcId(22);
/// Procedure id of OrderStatus.
pub const ORDER_STATUS_PROC: ProcId = ProcId(23);
/// Procedure id of StockLevel.
pub const STOCK_LEVEL_PROC: ProcId = ProcId(24);

/// TPC-C Delivery, one district per transaction.
///
/// "Oldest undelivered order" is located via the district's
/// `next_deliv_o_id` cursor. Because the customer to credit is only known
/// after reading that order, but our deadlock-free 2PL needs the whole
/// lock set up front, the *client predicts* `(o_id, c_id)` with a
/// reconnaissance read and the transaction validates the prediction,
/// aborting (for a deterministic retry) if it went stale — the classic
/// Calvin/OLLP technique for dependent transactions.
///
/// Params: `w:u32 d:u32 carrier:u32 delivery_d:u64 pred_o:u32 pred_c:u32`.
pub struct DeliveryProc;

impl Procedure for DeliveryProc {
    fn id(&self) -> ProcId {
        DELIVERY_PROC
    }

    fn name(&self) -> &'static str {
        "tpcc-delivery"
    }

    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = Reader::new(p);
        let w = r.u32()?;
        let d = r.u32()?;
        let _carrier = r.u32()?;
        let _date = r.u64()?;
        let _pred_o = r.u32()?;
        let pred_c = r.u32()?;
        Ok(LockRequest {
            reads: vec![],
            // The district X lock protects the order / new-order /
            // order-line keys derived from the delivery cursor; the
            // predicted customer must be locked explicitly.
            writes: vec![keys::district(w, d), keys::customer(w, d, pred_c)],
        })
    }

    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = Reader::new(p);
        let w = r.u32()?;
        let d = r.u32()?;
        let carrier = r.u32()?;
        let date = r.u64()?;
        let pred_o = r.u32()?;
        let pred_c = r.u32()?;

        let d_key = keys::district(w, d);
        let mut district = District::decode(
            &ops.get(d_key)
                .ok_or_else(|| AbortReason::Logic(format!("no district {w}/{d}")))?,
        )?;
        if district.next_deliv_o_id >= district.next_o_id {
            return Err(AbortReason::Logic("nothing to deliver".into()));
        }
        let o_id = district.next_deliv_o_id;
        if o_id != pred_o {
            return Err(AbortReason::Logic(format!(
                "stale prediction: o_id {o_id} != predicted {pred_o}"
            )));
        }
        let o_key = keys::order(w, d, o_id);
        let mut order = Order::decode(
            &ops.get(o_key)
                .ok_or_else(|| AbortReason::Logic(format!("missing order {o_id}")))?,
        )?;
        if order.c_id != pred_c {
            return Err(AbortReason::Logic(format!(
                "stale prediction: c_id {} != predicted {pred_c}",
                order.c_id
            )));
        }

        // Consume the NEW_ORDER row, stamp the carrier, deliver the lines.
        ops.delete(keys::new_order(w, d, o_id));
        order.carrier_id = carrier;
        ops.put(o_key, &order.encode());
        let mut total = 0u64;
        for ol in 0..order.ol_cnt {
            let ol_key = keys::order_line(w, d, o_id, ol);
            let mut line = OrderLine::decode(
                &ops.get(ol_key)
                    .ok_or_else(|| AbortReason::Logic(format!("missing line {o_id}/{ol}")))?,
            )?;
            line.delivery_d = date;
            total += line.amount_cents;
            ops.put(ol_key, &line.encode());
        }
        let c_key = keys::customer(w, d, pred_c);
        let mut customer = Customer::decode(
            &ops.get(c_key)
                .ok_or_else(|| AbortReason::Logic("missing customer".into()))?,
        )?;
        customer.balance_cents += total as i64;
        customer.delivery_cnt += 1;
        ops.put(c_key, &customer.encode());

        district.next_deliv_o_id += 1;
        ops.put(d_key, &district.encode());
        Ok(())
    }
}

/// TPC-C OrderStatus (read-only): a customer's balance plus their most
/// recent order and its lines, found by scanning back from the district's
/// order cursor (bounded, newest-first). Shared district lock serializes
/// against NewOrder in the same district, so the derived order keys need
/// no individual locks.
///
/// Params: `w:u32 d:u32 c:u32`.
pub struct OrderStatusProc;

/// How many most-recent orders OrderStatus scans for the customer.
pub const ORDER_STATUS_SCAN: u32 = 20;

impl Procedure for OrderStatusProc {
    fn id(&self) -> ProcId {
        ORDER_STATUS_PROC
    }

    fn name(&self) -> &'static str {
        "tpcc-order-status"
    }

    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = Reader::new(p);
        let w = r.u32()?;
        let d = r.u32()?;
        let c = r.u32()?;
        Ok(LockRequest {
            reads: vec![keys::district(w, d), keys::customer(w, d, c)],
            writes: vec![],
        })
    }

    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = Reader::new(p);
        let w = r.u32()?;
        let d = r.u32()?;
        let c = r.u32()?;
        let customer = Customer::decode(
            &ops.get(keys::customer(w, d, c))
                .ok_or_else(|| AbortReason::Logic("missing customer".into()))?,
        )?;
        std::hint::black_box(customer.balance_cents);
        let district = District::decode(
            &ops.get(keys::district(w, d))
                .ok_or_else(|| AbortReason::Logic("missing district".into()))?,
        )?;
        let newest = district.next_o_id;
        let oldest = newest.saturating_sub(ORDER_STATUS_SCAN).max(1);
        let mut checksum = 0u64;
        for o_id in (oldest..newest).rev() {
            let Some(order_bytes) = ops.get(keys::order(w, d, o_id)) else {
                continue;
            };
            let order = Order::decode(&order_bytes)?;
            if order.c_id != c {
                continue;
            }
            for ol in 0..order.ol_cnt {
                if let Some(line) = ops.get(keys::order_line(w, d, o_id, ol)) {
                    checksum ^= OrderLine::decode(&line)?.amount_cents;
                }
            }
            break;
        }
        std::hint::black_box(checksum);
        Ok(())
    }
}

/// TPC-C StockLevel (read-only): count the items from the district's last
/// 20 orders whose stock quantity is below a threshold. Per the TPC-C
/// spec (clause 2.8.2.3) this transaction may run at weaker isolation;
/// stock rows are read without locks (reads are still individually
/// atomic).
///
/// Params: `w:u32 d:u32 threshold:u32`.
pub struct StockLevelProc;

impl Procedure for StockLevelProc {
    fn id(&self) -> ProcId {
        STOCK_LEVEL_PROC
    }

    fn name(&self) -> &'static str {
        "tpcc-stock-level"
    }

    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = Reader::new(p);
        let w = r.u32()?;
        let d = r.u32()?;
        Ok(LockRequest {
            reads: vec![keys::district(w, d)],
            writes: vec![],
        })
    }

    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = Reader::new(p);
        let w = r.u32()?;
        let d = r.u32()?;
        let threshold = r.u32()?;
        let district = District::decode(
            &ops.get(keys::district(w, d))
                .ok_or_else(|| AbortReason::Logic("missing district".into()))?,
        )?;
        let newest = district.next_o_id;
        let oldest = newest.saturating_sub(20).max(1);
        let mut low = 0u32;
        let mut seen = std::collections::HashSet::new();
        for o_id in oldest..newest {
            let Some(order_bytes) = ops.get(keys::order(w, d, o_id)) else {
                continue;
            };
            let order = Order::decode(&order_bytes)?;
            for ol in 0..order.ol_cnt {
                let Some(line_bytes) = ops.get(keys::order_line(w, d, o_id, ol)) else {
                    continue;
                };
                let line = OrderLine::decode(&line_bytes)?;
                if !seen.insert(line.i_id) {
                    continue;
                }
                if let Some(stock_bytes) = ops.get(keys::stock(w, line.i_id)) {
                    if Stock::decode(&stock_bytes)?.quantity < threshold {
                        low += 1;
                    }
                }
            }
        }
        std::hint::black_box(low);
        Ok(())
    }
}

/// Builds Delivery params.
pub fn delivery_params(
    w: u32,
    d: u32,
    carrier: u32,
    date: u64,
    pred_o: u32,
    pred_c: u32,
) -> std::sync::Arc<[u8]> {
    Writer::new()
        .u32(w)
        .u32(d)
        .u32(carrier)
        .u64(date)
        .u32(pred_o)
        .u32(pred_c)
        .finish()
}

/// Builds OrderStatus params.
pub fn order_status_params(w: u32, d: u32, c: u32) -> std::sync::Arc<[u8]> {
    Writer::new().u32(w).u32(d).u32(c).finish()
}

/// Builds StockLevel params.
pub fn stock_level_params(w: u32, d: u32, threshold: u32) -> std::sync::Arc<[u8]> {
    Writer::new().u32(w).u32(d).u32(threshold).finish()
}
