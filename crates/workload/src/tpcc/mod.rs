//! TPC-C (§5.2): 50 warehouses, 50% NewOrder / 50% Payment.
//!
//! "These two transactions make up 88% of the default TPC-C mix and are
//! the most relevant transactions when experimenting with checkpointing
//! algorithms since they are write-intensive." NewOrder's many writes per
//! transaction are also what makes Zig-Zag fall further behind CALC here
//! than on the microbenchmark (§5.2).
//!
//! * [`keys`] — composite primary keys bit-packed into the engine's
//!   flat `u64` keyspace, table tag in the top byte.
//! * [`tables`] — row encodings (length-stable little-endian layouts with
//!   realistic filler).
//! * [`procs`] — the NewOrder and Payment stored procedures, deterministic
//!   given their parameters (entry dates, history ids, and amounts ride in
//!   the params).
//! * [`gen`] — cardinality-correct population and the request generator
//!   with TPC-C's NURand skew.

pub mod gen;
pub mod keys;
pub mod procs;
pub mod tables;

pub use gen::{TpccConfig, TpccWorkload};
pub use procs::{NEW_ORDER_PROC, PAYMENT_PROC};
