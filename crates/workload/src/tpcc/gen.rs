//! TPC-C population and request generation.

use std::sync::Arc;

use calc_common::rng::SplitMix;
use calc_engine::Database;
use calc_txn::proc::{ProcId, ProcRegistry};

use super::keys;
use super::procs::{
    delivery_params, new_order_params, order_status_params, payment_params, stock_level_params,
    DeliveryProc, NewOrderProc, OrderStatusProc, PaymentProc, StockLevelProc, DELIVERY_PROC,
    INVALID_ITEM, NEW_ORDER_PROC, ORDER_STATUS_PROC, PAYMENT_PROC, STOCK_LEVEL_PROC,
};
use super::tables::*;

/// TPC-C scale parameters. `paper()` is the evaluation's 50-warehouse
/// setup; `small()` is a test-sized instance.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    /// Warehouse count (paper: 50).
    pub warehouses: u32,
    /// Districts per warehouse (spec: 10).
    pub districts: u32,
    /// Customers per district (spec: 3000).
    pub customers_per_district: u32,
    /// Item catalogue size (spec: 100 000).
    pub items: u32,
    /// Probability of the invalid-item rollback (spec: 1%).
    pub rollback_prob: f64,
    /// Fraction of order lines supplied by a remote warehouse (spec: 1%).
    pub remote_prob: f64,
}

impl TpccConfig {
    /// The paper's 50-warehouse configuration.
    pub fn paper() -> Self {
        TpccConfig {
            warehouses: 50,
            districts: 10,
            customers_per_district: 3000,
            items: 100_000,
            rollback_prob: 0.01,
            remote_prob: 0.01,
        }
    }

    /// A small configuration for tests and quick runs.
    pub fn small() -> Self {
        TpccConfig {
            warehouses: 2,
            districts: 4,
            customers_per_district: 30,
            items: 100,
            rollback_prob: 0.01,
            remote_prob: 0.05,
        }
    }

    /// Scaled configuration: `warehouses` at spec cardinalities.
    pub fn with_warehouses(warehouses: u32) -> Self {
        TpccConfig {
            warehouses,
            ..TpccConfig::paper()
        }
    }

    /// Records created by population.
    pub fn initial_records(&self) -> usize {
        let w = self.warehouses as usize;
        let d = self.districts as usize;
        let c = self.customers_per_district as usize;
        let i = self.items as usize;
        w + w * d + w * d * c + w * i + i
    }

    /// A store-capacity hint leaving room for `expected_orders` NewOrder
    /// transactions (each inserts 1 order + 1 new-order + ~10 order
    /// lines) and as many Payment histories.
    pub fn capacity_hint(&self, expected_orders: usize) -> usize {
        self.initial_records() + expected_orders * 13 + 1024
    }
}

/// TPC-C request generator (50% NewOrder / 50% Payment).
pub struct TpccWorkload {
    config: TpccConfig,
    rng: SplitMix,
    /// NURand constants, fixed per run as the spec requires.
    c_c_id: u64,
    c_i_id: u64,
    /// Unique history-id allocator.
    next_h_id: u64,
    /// Logical clock for entry dates (deterministic).
    clock: u64,
}

impl TpccWorkload {
    /// Creates a generator.
    pub fn new(config: TpccConfig, seed: u64) -> Self {
        let mut rng = SplitMix::new(seed);
        let c_c_id = rng.next_below(1024);
        let c_i_id = rng.next_below(8192);
        TpccWorkload {
            config,
            rng,
            c_c_id,
            c_i_id,
            next_h_id: 1,
            clock: 1,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    /// Partitions the history-id space so several generator instances
    /// (one per feeder thread) never collide: instance `i` allocates ids
    /// in `[i << 40, (i+1) << 40)`.
    pub fn set_history_partition(&mut self, instance: u64) {
        self.next_h_id = (instance << 40) + 1;
    }

    /// Registers NewOrder and Payment (the paper's §5.2 mix).
    pub fn register(registry: &mut ProcRegistry) {
        registry.register(Arc::new(NewOrderProc));
        registry.register(Arc::new(PaymentProc));
    }

    /// Registers all five TPC-C transactions (the spec's full mix).
    pub fn register_full_mix(registry: &mut ProcRegistry) {
        Self::register(registry);
        registry.register(Arc::new(DeliveryProc));
        registry.register(Arc::new(OrderStatusProc));
        registry.register(Arc::new(StockLevelProc));
    }

    /// Loads warehouses, districts, customers, stock, and items at the
    /// configured cardinalities.
    pub fn populate(&self, db: &Database) {
        let cfg = &self.config;
        for i in 0..cfg.items {
            db.load_initial(
                keys::item(i),
                &Item {
                    price_cents: 100 + (i as u64 * 37) % 9900,
                    im_id: i % 10_000,
                }
                .encode(),
            )
            .expect("capacity");
        }
        for w in 0..cfg.warehouses {
            db.load_initial(
                keys::warehouse(w),
                &Warehouse {
                    ytd_cents: 30_000_000,
                    tax_bp: (w as u64 * 13 % 2000) as u32,
                }
                .encode(),
            )
            .expect("capacity");
            for i in 0..cfg.items {
                db.load_initial(
                    keys::stock(w, i),
                    &Stock {
                        quantity: 50 + (i % 50),
                        ytd: 0,
                        order_cnt: 0,
                        remote_cnt: 0,
                    }
                    .encode(),
                )
                .expect("capacity");
            }
            for d in 0..cfg.districts {
                db.load_initial(
                    keys::district(w, d),
                    &District {
                        next_o_id: 1,
                        next_deliv_o_id: 1,
                        ytd_cents: 3_000_000,
                        tax_bp: (d as u64 * 17 % 2000) as u32,
                    }
                    .encode(),
                )
                .expect("capacity");
                for c in 0..cfg.customers_per_district {
                    db.load_initial(
                        keys::customer(w, d, c),
                        &Customer {
                            balance_cents: -1000,
                            ytd_payment_cents: 1000,
                            payment_cnt: 1,
                            delivery_cnt: 0,
                            discount_bp: (c as u64 * 7 % 5000) as u32,
                            credit_ok: (c % 10 != 0) as u32,
                        }
                        .encode(),
                    )
                    .expect("capacity");
                }
            }
        }
    }

    /// TPC-C NURand(A, 0, x-1).
    fn nurand(&mut self, a: u64, c: u64, x: u64) -> u64 {
        ((self.rng.next_below(a + 1) | self.rng.next_below(x)) + c) % x
    }

    /// Generates the next request: 50% NewOrder, 50% Payment (§5.2).
    pub fn next_request(&mut self) -> (ProcId, Arc<[u8]>) {
        self.clock += 1;
        let cfg_items = self.config.items as u64;
        let cfg_cust = self.config.customers_per_district as u64;
        let w = self.rng.next_below(self.config.warehouses as u64) as u32;
        let d = self.rng.next_below(self.config.districts as u64) as u32;
        if self.rng.chance(0.5) {
            // NewOrder.
            let c = self.nurand(1023, self.c_c_id, cfg_cust) as u32;
            let ol_cnt = 5 + self.rng.next_below(11) as u32; // 5..=15
            let rollback = self.rng.chance(self.config.rollback_prob);
            let mut lines = Vec::with_capacity(ol_cnt as usize);
            for ol in 0..ol_cnt {
                let item = if rollback && ol == ol_cnt - 1 {
                    INVALID_ITEM
                } else {
                    self.nurand(8191, self.c_i_id, cfg_items) as u32
                };
                let supply_w = if self.config.warehouses > 1
                    && self.rng.chance(self.config.remote_prob)
                {
                    // A different warehouse.
                    let mut sw = self.rng.next_below(self.config.warehouses as u64) as u32;
                    if sw == w {
                        sw = (sw + 1) % self.config.warehouses;
                    }
                    sw
                } else {
                    w
                };
                let qty = 1 + self.rng.next_below(10) as u32;
                lines.push((item, supply_w, qty));
            }
            (
                NEW_ORDER_PROC,
                new_order_params(w, d, c, self.clock, &lines),
            )
        } else {
            // Payment.
            let c = self.nurand(1023, self.c_c_id, cfg_cust) as u32;
            let amount = 100 + self.rng.next_below(500_000);
            let h_id = self.next_h_id;
            self.next_h_id += 1;
            (
                PAYMENT_PROC,
                payment_params(w, d, c, amount, h_id, self.clock),
            )
        }
    }
}

impl TpccWorkload {
    fn gen_new_order(&mut self) -> (ProcId, Arc<[u8]>) {
        let cfg_items = self.config.items as u64;
        let cfg_cust = self.config.customers_per_district as u64;
        let w = self.rng.next_below(self.config.warehouses as u64) as u32;
        let d = self.rng.next_below(self.config.districts as u64) as u32;
        let c = self.nurand(1023, self.c_c_id, cfg_cust) as u32;
        let ol_cnt = 5 + self.rng.next_below(11) as u32;
        let rollback = self.rng.chance(self.config.rollback_prob);
        let mut lines = Vec::with_capacity(ol_cnt as usize);
        for ol in 0..ol_cnt {
            let item = if rollback && ol == ol_cnt - 1 {
                INVALID_ITEM
            } else {
                self.nurand(8191, self.c_i_id, cfg_items) as u32
            };
            let supply_w = if self.config.warehouses > 1 && self.rng.chance(self.config.remote_prob)
            {
                let mut sw = self.rng.next_below(self.config.warehouses as u64) as u32;
                if sw == w {
                    sw = (sw + 1) % self.config.warehouses;
                }
                sw
            } else {
                w
            };
            let qty = 1 + self.rng.next_below(10) as u32;
            lines.push((item, supply_w, qty));
        }
        (NEW_ORDER_PROC, new_order_params(w, d, c, self.clock, &lines))
    }

    fn gen_payment(&mut self) -> (ProcId, Arc<[u8]>) {
        let cfg_cust = self.config.customers_per_district as u64;
        let w = self.rng.next_below(self.config.warehouses as u64) as u32;
        let d = self.rng.next_below(self.config.districts as u64) as u32;
        let c = self.nurand(1023, self.c_c_id, cfg_cust) as u32;
        let amount = 100 + self.rng.next_below(500_000);
        let h_id = self.next_h_id;
        self.next_h_id += 1;
        (PAYMENT_PROC, payment_params(w, d, c, amount, h_id, self.clock))
    }

    /// Generates a request from the spec's full five-transaction mix
    /// (45% NewOrder, 43% Payment, 4% each OrderStatus / Delivery /
    /// StockLevel). Delivery needs a reconnaissance read against the live
    /// database to predict its dependent lock set (`o_id`, `c_id`) —
    /// the Calvin/OLLP technique — hence the `db` parameter. A stale
    /// prediction deterministically aborts and the next attempt retries.
    pub fn next_request_full_mix(&mut self, db: &Database) -> (ProcId, Arc<[u8]>) {
        self.clock += 1;
        let roll = self.rng.next_below(100);
        let w = self.rng.next_below(self.config.warehouses as u64) as u32;
        let d = self.rng.next_below(self.config.districts as u64) as u32;
        match roll {
            0..=44 => self.gen_new_order(),
            45..=87 => self.gen_payment(),
            88..=91 => {
                let c = self
                    .nurand(1023, self.c_c_id, self.config.customers_per_district as u64)
                    as u32;
                (ORDER_STATUS_PROC, order_status_params(w, d, c))
            }
            92..=95 => {
                let threshold = 10 + self.rng.next_below(11) as u32;
                (STOCK_LEVEL_PROC, stock_level_params(w, d, threshold))
            }
            _ => {
                // Delivery: reconnaissance-read the district cursor and the
                // order it points at; fall back to Payment when there is
                // nothing to deliver.
                let recon = db.get(keys::district(w, d)).and_then(|bytes| {
                    let district = District::decode(&bytes).ok()?;
                    if district.next_deliv_o_id >= district.next_o_id {
                        return None;
                    }
                    let o_id = district.next_deliv_o_id;
                    let order = Order::decode(&db.get(keys::order(w, d, o_id))?).ok()?;
                    Some((o_id, order.c_id))
                });
                match recon {
                    Some((o_id, c_id)) => {
                        let carrier = 1 + self.rng.next_below(10) as u32;
                        (
                            DELIVERY_PROC,
                            delivery_params(w, d, carrier, self.clock, o_id, c_id),
                        )
                    }
                    None => self.gen_payment(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calc_common::types::Key;
    use calc_engine::{EngineConfig, StrategyKind, TxnOutcome};

    fn open(config: &TpccConfig, name: &str) -> Database {
        let dir = std::env::temp_dir().join(format!(
            "calc-tpcc-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut registry = ProcRegistry::new();
        TpccWorkload::register(&mut registry);
        let mut ec = EngineConfig::new(
            StrategyKind::Calc,
            config.capacity_hint(10_000),
            140,
            dir,
        );
        ec.workers = 4;
        Database::open(ec, registry).unwrap()
    }

    #[test]
    fn populate_cardinalities() {
        let config = TpccConfig::small();
        let db = open(&config, "pop");
        let wl = TpccWorkload::new(config.clone(), 1);
        wl.populate(&db);
        assert_eq!(db.record_count(), config.initial_records());
        // Spot checks.
        assert!(db.get(keys::warehouse(0)).is_some());
        assert!(db.get(keys::warehouse(config.warehouses)).is_none());
        assert!(db
            .get(keys::customer(1, 3, config.customers_per_district - 1))
            .is_some());
        assert!(db.get(keys::stock(1, config.items - 1)).is_some());
    }

    #[test]
    fn mixed_workload_runs_and_inserts_orders() {
        let config = TpccConfig::small();
        let db = open(&config, "mix");
        let mut wl = TpccWorkload::new(config.clone(), 2);
        wl.populate(&db);
        let before = db.record_count();
        let mut committed = 0;
        let mut rolled_back = 0;
        for _ in 0..200 {
            let (proc, p) = wl.next_request();
            match db.execute(proc, p) {
                TxnOutcome::Committed(_) => committed += 1,
                TxnOutcome::Aborted(_) => rolled_back += 1,
            }
        }
        assert!(committed > 150, "committed={committed}");
        // ~1% rollbacks in 100 NewOrders: usually 0-5.
        assert!(rolled_back < 20, "rolled_back={rolled_back}");
        assert!(
            db.record_count() > before,
            "NewOrder/Payment must insert rows"
        );
    }

    #[test]
    fn new_order_advances_district_and_inserts_lines() {
        let config = TpccConfig::small();
        let db = open(&config, "noord");
        let wl = TpccWorkload::new(config.clone(), 3);
        wl.populate(&db);
        let lines = [(1u32, 0u32, 3u32), (2, 0, 1)];
        let p = new_order_params(0, 0, 5, 99, &lines);
        let out = db.execute(NEW_ORDER_PROC, p);
        assert!(matches!(out, TxnOutcome::Committed(_)));
        let district = District::decode(&db.get(keys::district(0, 0)).unwrap()).unwrap();
        assert_eq!(district.next_o_id, 2);
        let order = Order::decode(&db.get(keys::order(0, 0, 1)).unwrap()).unwrap();
        assert_eq!(order.c_id, 5);
        assert_eq!(order.ol_cnt, 2);
        assert!(db.get(keys::new_order(0, 0, 1)).is_some());
        let ol = OrderLine::decode(&db.get(keys::order_line(0, 0, 1, 0)).unwrap()).unwrap();
        assert_eq!(ol.quantity, 3);
        let stock = Stock::decode(&db.get(keys::stock(0, 1)).unwrap()).unwrap();
        assert_eq!(stock.order_cnt, 1);
        assert_eq!(stock.ytd, 3);
    }

    #[test]
    fn invalid_item_rolls_back_everything() {
        let config = TpccConfig::small();
        let db = open(&config, "rollback");
        let wl = TpccWorkload::new(config.clone(), 4);
        wl.populate(&db);
        let district_before = db.get(keys::district(0, 0)).unwrap();
        let stock_before = db.get(keys::stock(0, 1)).unwrap();
        let lines = [(1u32, 0u32, 3u32), (INVALID_ITEM, 0, 1)];
        let out = db.execute(NEW_ORDER_PROC, new_order_params(0, 0, 5, 99, &lines));
        assert!(matches!(out, TxnOutcome::Aborted(_)));
        assert_eq!(db.get(keys::district(0, 0)).unwrap(), district_before);
        assert_eq!(db.get(keys::stock(0, 1)).unwrap(), stock_before);
        assert!(db.get(keys::order(0, 0, 1)).is_none());
        assert!(db.get(keys::order_line(0, 0, 1, 0)).is_none());
    }

    #[test]
    fn payment_moves_money() {
        let config = TpccConfig::small();
        let db = open(&config, "pay");
        let wl = TpccWorkload::new(config.clone(), 5);
        wl.populate(&db);
        let out = db.execute(PAYMENT_PROC, payment_params(1, 2, 3, 5000, 77, 123));
        assert!(matches!(out, TxnOutcome::Committed(_)));
        let w = Warehouse::decode(&db.get(keys::warehouse(1)).unwrap()).unwrap();
        assert_eq!(w.ytd_cents, 30_005_000);
        let c = Customer::decode(&db.get(keys::customer(1, 2, 3)).unwrap()).unwrap();
        assert_eq!(c.balance_cents, -6000);
        assert_eq!(c.payment_cnt, 2);
        let h = History::decode(&db.get(keys::history(77)).unwrap()).unwrap();
        assert_eq!(h.amount_cents, 5000);
    }

    #[test]
    fn generator_determinism_and_mix() {
        let config = TpccConfig::small();
        let mut a = TpccWorkload::new(config.clone(), 11);
        let mut b = TpccWorkload::new(config.clone(), 11);
        let mut new_orders = 0;
        for _ in 0..400 {
            let (pa, ba) = a.next_request();
            let (pb, bb) = b.next_request();
            assert_eq!(pa, pb);
            assert_eq!(&ba[..], &bb[..]);
            if pa == NEW_ORDER_PROC {
                new_orders += 1;
            }
        }
        assert!((140..260).contains(&new_orders), "mix skewed: {new_orders}");
    }

    #[test]
    fn money_conservation_under_concurrent_payments() {
        // Sum of warehouse YTD increases must equal sum of customer
        // balance decreases — serializability check under concurrency.
        let config = TpccConfig::small();
        let db = std::sync::Arc::new(open(&config, "conserve"));
        let wl = TpccWorkload::new(config.clone(), 6);
        wl.populate(&db);
        let total_amount: u64 = (0..500u64)
            .map(|i| {
                let amount = 100 + i;
                db.submit(
                    PAYMENT_PROC,
                    payment_params(
                        (i % config.warehouses as u64) as u32,
                        (i % config.districts as u64) as u32,
                        (i % config.customers_per_district as u64) as u32,
                        amount,
                        1000 + i,
                        i,
                    ),
                );
                amount
            })
            .sum();
        // Drain: a sync marker only proves earlier requests were
        // *dequeued*; wait for all 501 to finish.
        db.execute(PAYMENT_PROC, payment_params(0, 0, 0, 0, 999_999, 0));
        while db.metrics().committed() + db.metrics().aborted() < 501 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let ytd_total: u64 = (0..config.warehouses)
            .map(|w| {
                Warehouse::decode(&db.get(keys::warehouse(w)).unwrap())
                    .unwrap()
                    .ytd_cents
            })
            .sum();
        let baseline = 30_000_000u64 * config.warehouses as u64;
        assert_eq!(ytd_total - baseline, total_amount);
    }

    #[test]
    fn capacity_hint_is_generous_enough() {
        let config = TpccConfig::small();
        assert!(config.capacity_hint(100) > config.initial_records() + 100 * 12);
    }

    #[test]
    fn keyspace_tags_do_not_collide_with_micro_keys() {
        // The microbenchmark uses raw keys < 2^56; every TPC-C key has a
        // nonzero tag byte.
        assert!(keys::warehouse(0).raw() >= 1 << 56);
        assert!(Key(12345).raw() < 1 << 56);
    }
}
