//! Zig-Zag checkpointing (§4.1.4), over the dual-copy
//! [`calc_storage::zigzag::ZigzagStore`].
//!
//! Every write maintains the `MR`/`MW` bit vectors and the second record
//! copy — the ~4% rest-state overhead of §5.1.1, and the reason Zig-Zag
//! falls further behind CALC on TPC-C's write-heavy NewOrder transactions
//! (§5.2). A checkpoint needs a **physical point of consistency**: the
//! engine quiesces (the workload-dependent stall of Figure 2(b)), the
//! store flips `MW := ¬MR`, and an asynchronous scan then writes
//! `AS[k][¬MW[k]]` — the copy no writer will touch until the next flip.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use calc_common::types::{CommitSeq, Key, Value};
use calc_storage::dirty::{BitVecTracker, DirtyTracker};
use calc_storage::dual::{StoreConfig, StoreError};
use calc_storage::mem::MemoryStats;
use calc_storage::zigzag::ZigzagStore;
use calc_storage::SlotId;
use calc_txn::commitlog::{CommitLog, PhaseStamp};

use calc_core::file::CheckpointKind;
use calc_core::manifest::CheckpointDir;
use calc_core::partition::{self, capture_parts, ShardPartition, CANCEL_POLL_STRIDE};
use calc_core::strategy::{
    CheckpointStats, CheckpointStrategy, EngineEnv, TxnToken, UndoImage, UndoRec, WriteKind,
    WriteRec,
};

/// Zig-Zag. See module docs.
pub struct ZigzagStrategy {
    store: ZigzagStore,
    log: Arc<CommitLog>,
    partial: bool,
    tracker: Option<BitVecTracker>,
    tombstones: [Mutex<Vec<Key>>; 2],
    upcoming: AtomicU64,
    /// True while an asynchronous capture scan is in flight: deletes must
    /// preserve the checkpointer's copy.
    capture_active: AtomicBool,
    /// Slots deleted during the capture window, reclaimed when it ends.
    deferred_reclaim: Mutex<Vec<SlotId>>,
    /// Slot high-water mark sealed at the physical point of consistency:
    /// records inserted after the point live in later slots and are
    /// excluded from the scan.
    sealed_high_water: AtomicUsize,
    /// Cycles that failed and were rolled back harmlessly.
    aborted: AtomicU64,
}

impl ZigzagStrategy {
    /// Full-checkpoint Zig-Zag.
    pub fn full(config: StoreConfig, log: Arc<CommitLog>) -> Self {
        Self::new(config, log, false)
    }

    /// Partial variant (pZigzag).
    pub fn partial(config: StoreConfig, log: Arc<CommitLog>) -> Self {
        Self::new(config, log, true)
    }

    fn new(config: StoreConfig, log: Arc<CommitLog>, partial: bool) -> Self {
        let capacity = config.capacity;
        ZigzagStrategy {
            store: ZigzagStore::new(config),
            log,
            partial,
            tracker: partial.then(|| BitVecTracker::new(capacity)),
            tombstones: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
            upcoming: AtomicU64::new(0),
            capture_active: AtomicBool::new(false),
            deferred_reclaim: Mutex::new(Vec::new()),
            sealed_high_water: AtomicUsize::new(0),
            aborted: AtomicU64::new(0),
        }
    }

    /// The underlying store (tests / diagnostics).
    pub fn store(&self) -> &ZigzagStore {
        &self.store
    }
}

impl CheckpointStrategy for ZigzagStrategy {
    fn name(&self) -> &'static str {
        if self.partial {
            "pZigzag"
        } else {
            "Zigzag"
        }
    }

    fn transaction_consistent(&self) -> bool {
        true
    }

    fn partial(&self) -> bool {
        self.partial
    }

    fn load_initial(&self, key: Key, value: &[u8]) -> Result<(), StoreError> {
        self.store.insert(key, value).map(|_| ())
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.store.get(key)
    }

    fn record_count(&self) -> usize {
        self.store.len()
    }

    fn txn_begin(&self) -> TxnToken {
        TxnToken {
            stamp: self.log.current_stamp(),
            writes: Vec::new(),
        }
    }

    fn txn_end(&self, _token: TxnToken) {}

    fn apply_write(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<Option<Value>, StoreError> {
        let old = self.store.write(key, value)?;
        let slot = self.store.slot_of(key).expect("written key is linked");
        token.writes.push(WriteRec {
            key,
            slot,
            kind: WriteKind::Update,
            created_stable: false,
        });
        Ok(old)
    }

    fn apply_insert(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<bool, StoreError> {
        let fresh_only = self.capture_active.load(Ordering::Acquire);
        match self.store.insert_opts(key, value, fresh_only) {
            Ok(slot) => {
                token.writes.push(WriteRec {
                    key,
                    slot,
                    kind: WriteKind::Insert,
                    created_stable: false,
                });
                Ok(true)
            }
            Err(StoreError::DuplicateKey(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn apply_delete(&self, token: &mut TxnToken, key: Key) -> Result<Option<Value>, StoreError> {
        let slot = self.store.slot_of(key).ok_or(StoreError::KeyNotFound(key))?;
        let active = self.capture_active.load(Ordering::Acquire);
        let old = self.store.delete(key, active)?;
        if active {
            self.deferred_reclaim.lock().push(slot);
        }
        token.writes.push(WriteRec {
            key,
            slot,
            kind: WriteKind::Delete,
            created_stable: false,
        });
        Ok(old)
    }

    fn on_commit(&self, token: &mut TxnToken, _seq: CommitSeq, _commit: PhaseStamp) {
        let interval = self.upcoming.load(Ordering::Acquire);
        for w in &token.writes {
            if let Some(t) = &self.tracker {
                t.mark(w.slot, interval);
            }
            if w.kind == WriteKind::Delete && self.partial {
                self.tombstones[(interval & 1) as usize].lock().push(w.key);
            }
        }
    }

    fn on_abort(&self, token: &mut TxnToken, undo: &[UndoRec]) {
        let n = token.writes.len();
        debug_assert_eq!(undo.len(), n);
        for (i, u) in undo.iter().enumerate() {
            let w = &token.writes[n - 1 - i];
            match &u.img {
                UndoImage::Restore(v) => {
                    // Rolling back through the normal write path is safe:
                    // it targets AS[MW], never the checkpointer's copy.
                    self.store.write(u.key, v).expect("undo target exists");
                }
                UndoImage::Remove => {
                    let active = self.capture_active.load(Ordering::Acquire);
                    let _ = self.store.delete(u.key, active);
                    if active {
                        self.deferred_reclaim.lock().push(w.slot);
                    }
                }
                UndoImage::Reinsert(v) => {
                    let fresh_only = self.capture_active.load(Ordering::Acquire);
                    self.store
                        .insert_opts(u.key, v, fresh_only)
                        .expect("undo reinsert");
                }
            }
        }
        if let Some(t) = &self.tracker {
            let interval = self.upcoming.load(Ordering::Acquire);
            for w in &token.writes {
                t.mark(w.slot, interval);
                t.mark(w.slot, interval + 1);
            }
        }
    }

    fn checkpoint(&self, env: &dyn EngineEnv, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        let start = Instant::now();
        let id = self.upcoming.load(Ordering::Acquire);
        let mut watermark = CommitSeq::ZERO;
        let mut tombs: Vec<Key> = Vec::new();
        // Physical point of consistency: quiesce, flip MW := ¬MR.
        let quiesce = env.quiesced(&mut || {
            watermark = self.log.last_seq();
            self.store.begin_checkpoint();
            self.sealed_high_water
                .store(self.store.slot_high_water(), Ordering::Release);
            if self.partial {
                tombs = std::mem::take(&mut *self.tombstones[(id & 1) as usize].lock());
            }
            self.capture_active.store(true, Ordering::Release);
            self.upcoming.fetch_add(1, Ordering::Release);
            Ok(())
        })?;

        // Asynchronous scan of the copies no writer touches.
        let kind = if self.partial {
            CheckpointKind::Partial
        } else {
            CheckpointKind::Full
        };
        let hw = self.sealed_high_water.load(Ordering::Acquire);
        // The scan reads the dirty set non-destructively and clears it
        // only after a successful publish, so a failed cycle can roll its
        // coverage forward into interval id + 1.
        let dirty: Vec<SlotId> = if self.partial {
            self.tracker.as_ref().expect("partial").dirty_slots(id, hw)
        } else {
            Vec::new()
        };
        let threads = dir.checkpoint_threads();
        let result = if self.partial {
            let split = ShardPartition::over(dirty.len(), threads);
            capture_parts(dir, kind, id, watermark, &tombs, threads, |part, w, cancel| {
                for (i, &slot) in dirty[split.range(part)].iter().enumerate() {
                    if i % CANCEL_POLL_STRIDE == 0 && cancel.load(Ordering::Relaxed) {
                        return Err(partition::cancelled());
                    }
                    if let Some((key, v)) = self.store.checkpoint_copy(slot) {
                        w.write_record(key, &v)?;
                    }
                }
                Ok(())
            })
        } else {
            let split = ShardPartition::over(hw, threads);
            capture_parts(dir, kind, id, watermark, &[], threads, |part, w, cancel| {
                for (i, slot) in split.range(part).enumerate() {
                    if i % CANCEL_POLL_STRIDE == 0 && cancel.load(Ordering::Relaxed) {
                        return Err(partition::cancelled());
                    }
                    if let Some((key, v)) = self.store.checkpoint_copy(slot as SlotId) {
                        w.write_record(key, &v)?;
                    }
                }
                Ok(())
            })
        };
        let summary = match result {
            Ok(s) => s,
            Err(e) => {
                // Harmless failure: checkpoint_copy never mutates, so the
                // committed values still live in the store — re-marking
                // the dirty set (and re-queuing tombstones) into interval
                // id + 1 makes the next cycle's capture cover everything
                // this one would have, at its own later flip point.
                if self.partial {
                    let tracker = self.tracker.as_ref().expect("partial");
                    for &slot in &dirty {
                        tracker.mark(slot, id + 1);
                    }
                    self.tombstones[((id + 1) & 1) as usize].lock().extend(tombs);
                    tracker.clear(id);
                }
                self.capture_active.store(false, Ordering::Release);
                for slot in std::mem::take(&mut *self.deferred_reclaim.lock()) {
                    self.store.reclaim_after_capture(slot);
                }
                self.aborted.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        if let Some(tracker) = &self.tracker {
            tracker.clear(id);
        }

        self.capture_active.store(false, Ordering::Release);
        for slot in std::mem::take(&mut *self.deferred_reclaim.lock()) {
            self.store.reclaim_after_capture(slot);
        }
        Ok(CheckpointStats {
            id,
            kind,
            watermark,
            records: summary.records,
            bytes: summary.bytes,
            raw_bytes: summary.raw_bytes,
            duration: start.elapsed(),
            quiesce,
            parts: summary.parts,
        })
    }

    fn write_base_checkpoint(&self, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        let start = Instant::now();
        let id = self.upcoming.fetch_add(1, Ordering::AcqRel);
        let watermark = self.log.last_seq();
        let threads = dir.checkpoint_threads();
        let split = ShardPartition::over(self.store.slot_high_water(), threads);
        let summary = capture_parts(
            dir,
            CheckpointKind::Full,
            id,
            watermark,
            &[],
            threads,
            |part, w, _cancel| {
                // At load time the read copy is the authoritative one; there
                // is no concurrent writer, so reading via get() by key is
                // equivalent — but go slot-wise for a single pass.
                for slot in split.range(part) {
                    if let Some((key, v)) = self.store.checkpoint_copy(slot as SlotId) {
                        w.write_record(key, &v)?;
                    }
                }
                Ok(())
            },
        )?;
        Ok(CheckpointStats {
            id,
            kind: CheckpointKind::Full,
            watermark,
            records: summary.records,
            bytes: summary.bytes,
            raw_bytes: summary.raw_bytes,
            duration: start.elapsed(),
            quiesce: std::time::Duration::ZERO,
            parts: summary.parts,
        })
    }

    fn resume_checkpoint_ids(&self, next_id: u64) {
        self.upcoming.fetch_max(next_id, Ordering::AcqRel);
    }

    fn aborted_cycles(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    fn memory(&self) -> MemoryStats {
        let mut m = self.store.memory();
        if let Some(t) = &self.tracker {
            m.overhead_bytes += t.heap_bytes();
        }
        m
    }
}

impl std::fmt::Debug for ZigzagStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(records={})", self.name(), self.store.len())
    }
}
