//! Interleaved Ping-Pong checkpointing (§4.1.3), over the triple-copy
//! [`calc_storage::triple::TripleStore`].
//!
//! Every update writes the application state **and** the current ping-pong
//! array — the double write behind IPP's ~25% lower baseline throughput on
//! write-intensive workloads (§5.1.1). At a physical point of consistency
//! (engine quiesce) the current array flips; a background pass then merges
//! the retired array's dirty values into the in-memory last-consistent
//! snapshot (full IPP — up to 4 copies of the database, Figure 6) and
//! writes the checkpoint. pIPP skips the snapshot and writes only the
//! retired dirty values plus tombstones.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use calc_common::types::{CommitSeq, Key, Value};
use calc_storage::dual::{StoreConfig, StoreError};
use calc_storage::mem::MemoryStats;
use calc_storage::triple::TripleStore;
use calc_storage::SlotId;
use calc_txn::commitlog::{CommitLog, PhaseStamp};

use calc_core::file::CheckpointKind;
use calc_core::manifest::CheckpointDir;
use calc_core::partition::{capture_parts, ShardPartition};
use calc_core::strategy::{
    CheckpointStats, CheckpointStrategy, EngineEnv, TxnToken, UndoImage, UndoRec, WriteKind,
    WriteRec,
};

/// Interleaved Ping-Pong. See module docs.
pub struct IppStrategy {
    store: TripleStore,
    log: Arc<CommitLog>,
    partial: bool,
    tombstones: [Mutex<Vec<Key>>; 2],
    upcoming: AtomicU64,
    /// High-water mark sealed at each flip (scan bound).
    sealed_high_water: AtomicU64,
    /// Cycles that failed and were rolled back harmlessly.
    aborted: AtomicU64,
}

impl IppStrategy {
    /// Full-checkpoint IPP (keeps the in-memory consistent snapshot).
    pub fn full(config: StoreConfig, log: Arc<CommitLog>) -> Self {
        Self::new(config, log, false)
    }

    /// Partial variant (pIPP).
    pub fn partial(config: StoreConfig, log: Arc<CommitLog>) -> Self {
        Self::new(config, log, true)
    }

    fn new(config: StoreConfig, log: Arc<CommitLog>, partial: bool) -> Self {
        IppStrategy {
            store: TripleStore::new(config, !partial),
            log,
            partial,
            tombstones: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
            upcoming: AtomicU64::new(0),
            sealed_high_water: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
        }
    }

    /// The underlying store (tests / diagnostics).
    pub fn store(&self) -> &TripleStore {
        &self.store
    }
}

impl CheckpointStrategy for IppStrategy {
    fn name(&self) -> &'static str {
        if self.partial {
            "pIPP"
        } else {
            "IPP"
        }
    }

    fn transaction_consistent(&self) -> bool {
        true
    }

    fn partial(&self) -> bool {
        self.partial
    }

    fn load_initial(&self, key: Key, value: &[u8]) -> Result<(), StoreError> {
        self.store.insert(key, value).map(|_| ())
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.store.get(key)
    }

    fn record_count(&self) -> usize {
        self.store.len()
    }

    fn txn_begin(&self) -> TxnToken {
        TxnToken {
            stamp: self.log.current_stamp(),
            writes: Vec::new(),
        }
    }

    fn txn_end(&self, _token: TxnToken) {}

    fn apply_write(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<Option<Value>, StoreError> {
        let old = self.store.write(key, value)?;
        let slot = self.store.slot_of(key).expect("written key is linked");
        token.writes.push(WriteRec {
            key,
            slot,
            kind: WriteKind::Update,
            created_stable: false,
        });
        Ok(old)
    }

    fn apply_insert(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<bool, StoreError> {
        match self.store.insert(key, value) {
            Ok(slot) => {
                token.writes.push(WriteRec {
                    key,
                    slot,
                    kind: WriteKind::Insert,
                    created_stable: false,
                });
                Ok(true)
            }
            Err(StoreError::DuplicateKey(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn apply_delete(&self, token: &mut TxnToken, key: Key) -> Result<Option<Value>, StoreError> {
        let slot = self.store.slot_of(key).ok_or(StoreError::KeyNotFound(key))?;
        let old = self.store.delete(key)?;
        token.writes.push(WriteRec {
            key,
            slot,
            kind: WriteKind::Delete,
            created_stable: false,
        });
        Ok(old)
    }

    fn on_commit(&self, token: &mut TxnToken, _seq: CommitSeq, _commit: PhaseStamp) {
        // Dirty tracking lives in the store's per-copy bit vectors; only
        // tombstones need commit-time bookkeeping.
        if self.partial {
            let interval = self.upcoming.load(Ordering::Acquire);
            for w in &token.writes {
                if w.kind == WriteKind::Delete {
                    self.tombstones[(interval & 1) as usize].lock().push(w.key);
                }
            }
        }
    }

    fn on_abort(&self, token: &mut TxnToken, undo: &[UndoRec]) {
        let n = token.writes.len();
        debug_assert_eq!(undo.len(), n);
        for (i, u) in undo.iter().enumerate() {
            let _w = &token.writes[n - 1 - i];
            match &u.img {
                UndoImage::Restore(v) => {
                    // Normal write path: re-dirties the record with its old
                    // value, which the next checkpoint will simply rewrite.
                    self.store.write(u.key, v).expect("undo target exists");
                }
                UndoImage::Remove => {
                    let _ = self.store.delete(u.key);
                }
                UndoImage::Reinsert(v) => {
                    self.store.insert(u.key, v).expect("undo reinsert");
                }
            }
        }
    }

    fn checkpoint(&self, env: &dyn EngineEnv, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        let start = Instant::now();
        let id = self.upcoming.load(Ordering::Acquire);
        let mut watermark = CommitSeq::ZERO;
        let mut retired = 0usize;
        let mut tombs: Vec<Key> = Vec::new();
        // Physical point of consistency: flip the current array.
        let quiesce = env.quiesced(&mut || {
            watermark = self.log.last_seq();
            retired = self.store.flip_current();
            self.sealed_high_water
                .store(self.store.slot_high_water() as u64, Ordering::Release);
            if self.partial {
                tombs = std::mem::take(&mut *self.tombstones[(id & 1) as usize].lock());
            }
            self.upcoming.fetch_add(1, Ordering::Release);
            Ok(())
        })?;

        let kind = if self.partial {
            CheckpointKind::Partial
        } else {
            CheckpointKind::Full
        };
        let hw = self.sealed_high_water.load(Ordering::Acquire) as usize;
        let threads = dir.checkpoint_threads();
        // pIPP only: values drained from the retired array so far. The
        // drain is destructive, so a failed cycle must re-inject them into
        // the current array (the in-progress files are thrown away).
        // Shared across the capture threads; every consumed value is
        // registered here *before* the fallible write, so the abort path
        // below restores it even if the write that followed failed.
        let consumed: Mutex<Vec<(SlotId, Key, Value)>> = Mutex::new(Vec::new());
        let result = if self.partial {
            let split = ShardPartition::over(hw, threads);
            capture_parts(dir, kind, id, watermark, &tombs, threads, |part, w, _cancel| {
                for slot in split.range(part) {
                    if let Some((key, Some(v))) =
                        self.store.consume_retired(slot as SlotId, retired)
                    {
                        // (A `None` value is a deletion observed via the
                        // retired copy itself: covered by the tombstone
                        // buffer, nothing to write.)
                        consumed.lock().push((slot as SlotId, key, v.clone()));
                        w.write_record(key, &v)?;
                    }
                }
                Ok(())
            })
        } else {
            // Merge the retired dirty values into the snapshot — striped
            // over the capture threads (disjoint slot ranges, per-slot
            // locks) — then write the full consistent snapshot.
            let split = ShardPartition::over(hw, threads);
            if threads == 1 {
                for slot in 0..hw as SlotId {
                    self.store.consume_retired(slot, retired);
                }
            } else {
                std::thread::scope(|s| {
                    for part in 0..threads {
                        let range = split.range(part);
                        s.spawn(move || {
                            for slot in range {
                                self.store.consume_retired(slot as SlotId, retired);
                            }
                        });
                    }
                });
            }
            let entries = self.store.snapshot_entries();
            let esplit = ShardPartition::over(entries.len(), threads);
            capture_parts(dir, kind, id, watermark, &[], threads, |part, w, _cancel| {
                for (key, v) in &entries[esplit.range(part)] {
                    w.write_record(*key, v)?;
                }
                Ok(())
            })
        };
        let summary = match result {
            Ok(s) => s,
            Err(e) => {
                // Harmless failure: the array already flipped, so finish
                // draining the retired array, then put the failed cycle's
                // state where the *next* cycle captures it.
                let mut consumed = consumed.into_inner();
                if self.partial {
                    for slot in 0..hw as SlotId {
                        if let Some((key, Some(v))) = self.store.consume_retired(slot, retired) {
                            consumed.push((slot, key, v));
                        }
                    }
                    for (slot, key, v) in &consumed {
                        self.store.restore_to_current(*slot, *key, v);
                    }
                    self.tombstones[((id + 1) & 1) as usize].lock().extend(tombs);
                } else {
                    // Full IPP: completing the snapshot merge is the whole
                    // restore — the next full checkpoint rewrites the
                    // now-consistent snapshot.
                    for slot in 0..hw as SlotId {
                        self.store.consume_retired(slot, retired);
                    }
                }
                self.aborted.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        Ok(CheckpointStats {
            id,
            kind,
            watermark,
            records: summary.records,
            bytes: summary.bytes,
            raw_bytes: summary.raw_bytes,
            duration: start.elapsed(),
            quiesce,
            parts: summary.parts,
        })
    }

    fn write_base_checkpoint(&self, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        let start = Instant::now();
        let id = self.upcoming.fetch_add(1, Ordering::AcqRel);
        let watermark = self.log.last_seq();
        if !self.partial {
            self.store.seed_snapshot();
        }
        let threads = dir.checkpoint_threads();
        let split = ShardPartition::over(self.store.slot_high_water(), threads);
        let summary = capture_parts(
            dir,
            CheckpointKind::Full,
            id,
            watermark,
            &[],
            threads,
            |part, w, _cancel| {
                for slot in split.range(part) {
                    if let Some((key, v)) = self.store.get_by_slot(slot as SlotId) {
                        w.write_record(key, &v)?;
                    }
                }
                Ok(())
            },
        )?;
        Ok(CheckpointStats {
            id,
            kind: CheckpointKind::Full,
            watermark,
            records: summary.records,
            bytes: summary.bytes,
            raw_bytes: summary.raw_bytes,
            duration: start.elapsed(),
            quiesce: std::time::Duration::ZERO,
            parts: summary.parts,
        })
    }

    fn resume_checkpoint_ids(&self, next_id: u64) {
        self.upcoming.fetch_max(next_id, Ordering::AcqRel);
    }

    fn aborted_cycles(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    fn memory(&self) -> MemoryStats {
        self.store.memory()
    }
}

impl std::fmt::Debug for IppStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(records={})", self.name(), self.store.len())
    }
}
