//! Fuzzy checkpointing (§4.1.2).
//!
//! The classic algorithm: (1) stop accepting update/commit/abort
//! operations; (2) persist a "checkpoint record" containing the dirty
//! table; (3) resume normal operation; (4) flush the dirty records to disk
//! asynchronously. Per the paper's adaptation to main memory, the dirty
//! table is record-granularity (the same bit vector pCALC uses), which
//! makes the persisted checkpoint record proportionally larger than in
//! disk-based systems — hence the visible quiesce spike in Figure 2.
//!
//! **Not transaction-consistent**: the asynchronous flush reads records
//! while they continue to be updated, so the checkpoint mixes states from
//! different serialization points. Without a database log it cannot be
//! repaired into a consistent state — this is exactly the paper's argument
//! for why log-less systems need a different algorithm. Recovery refuses
//! fuzzy checkpoints (`transaction_consistent() == false`).
//!
//! The default/traditional variant is partial (`pFuzzy`). The full variant
//! additionally maintains an in-memory copy of the database — "the latest
//! consistent snapshot" — and produces full checkpoints by merging dirty
//! records into it (2× memory).

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use calc_common::types::{CommitSeq, Key, Value};
use calc_storage::dirty::{BitVecTracker, DirtyTracker};
use calc_storage::dual::{DualVersionStore, StoreConfig, StoreError};
use calc_storage::mem::{MemCounter, MemoryStats};
use calc_storage::SlotId;
use calc_txn::commitlog::{CommitLog, PhaseStamp};

use calc_core::file::CheckpointKind;
use calc_core::manifest::CheckpointDir;
use calc_core::partition::{capture_parts, ShardPartition};
use calc_core::strategy::{
    CheckpointStats, CheckpointStrategy, EngineEnv, TxnToken, UndoImage, UndoRec, WriteKind,
    WriteRec,
};

/// Per-slot snapshot entries: `(raw key, value)` under a slot mutex.
type SnapshotArray = Box<[Mutex<Option<(u64, Value)>>]>;

/// Fuzzy checkpointing. See module docs.
pub struct FuzzyStrategy {
    store: DualVersionStore,
    log: Arc<CommitLog>,
    partial: bool,
    tracker: BitVecTracker,
    tombstones: [Mutex<Vec<Key>>; 2],
    upcoming: AtomicU64,
    /// Full variant only: the in-memory "latest snapshot" copy, indexed by
    /// slot.
    snapshot: Option<SnapshotArray>,
    snapshot_mem: MemCounter,
    /// Cycles that failed and were rolled back harmlessly.
    aborted: AtomicU64,
}

impl FuzzyStrategy {
    /// Full-checkpoint variant (keeps the in-memory snapshot copy).
    pub fn full(config: StoreConfig, log: Arc<CommitLog>) -> Self {
        Self::new(config, log, false)
    }

    /// Partial variant — the traditional fuzzy checkpoint (pFuzzy).
    pub fn partial(config: StoreConfig, log: Arc<CommitLog>) -> Self {
        Self::new(config, log, true)
    }

    fn new(config: StoreConfig, log: Arc<CommitLog>, partial: bool) -> Self {
        let capacity = config.capacity;
        FuzzyStrategy {
            store: DualVersionStore::new(config),
            log,
            partial,
            tracker: BitVecTracker::new(capacity),
            tombstones: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
            upcoming: AtomicU64::new(0),
            snapshot: (!partial).then(|| (0..capacity).map(|_| Mutex::new(None)).collect()),
            snapshot_mem: MemCounter::new(),
            aborted: AtomicU64::new(0),
        }
    }

    /// The underlying store (tests / diagnostics).
    pub fn store(&self) -> &DualVersionStore {
        &self.store
    }

    fn snapshot_set(&self, slot: SlotId, entry: Option<(u64, Value)>) {
        let Some(snapshot) = &self.snapshot else { return };
        let mut s = snapshot[slot as usize].lock();
        if let Some((_, v)) = &entry {
            self.snapshot_mem.add(v.len());
        }
        if let Some((_, old)) = std::mem::replace(&mut *s, entry) {
            self.snapshot_mem.sub(old.len());
        }
    }

    /// Persists the dirty-record table — the quiesced write whose size
    /// drives fuzzy's interruption (§4.1.2). Goes through the same disk
    /// throttle as checkpoints.
    fn persist_dirty_table(
        &self,
        dir: &CheckpointDir,
        id: u64,
        dirty: &[SlotId],
    ) -> io::Result<()> {
        let path = dir.path().join(format!(".dirtytab-{id:010}"));
        let mut out = dir.vfs().create(&path)?;
        let mut bytes = 0usize;
        for slot in dirty {
            out.write_all(&slot.to_le_bytes())?;
            bytes += 4;
        }
        out.sync()?;
        dir.throttle().consume(bytes);
        Ok(())
    }
}

impl CheckpointStrategy for FuzzyStrategy {
    fn name(&self) -> &'static str {
        if self.partial {
            "pFuzzy"
        } else {
            "Fuzzy"
        }
    }

    fn transaction_consistent(&self) -> bool {
        false
    }

    fn partial(&self) -> bool {
        self.partial
    }

    fn load_initial(&self, key: Key, value: &[u8]) -> Result<(), StoreError> {
        let slot = self.store.insert(key, value)?;
        self.snapshot_set(slot, Some((key.0, value.to_vec().into_boxed_slice())));
        Ok(())
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.store.get(key)
    }

    fn record_count(&self) -> usize {
        self.store.len()
    }

    fn txn_begin(&self) -> TxnToken {
        TxnToken {
            stamp: self.log.current_stamp(),
            writes: Vec::new(),
        }
    }

    fn txn_end(&self, _token: TxnToken) {}

    fn apply_write(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<Option<Value>, StoreError> {
        let mut g = self
            .store
            .locked_slot_of(key)
            .ok_or(StoreError::KeyNotFound(key))?;
        let slot = g.slot();
        let old = g.set_live(value);
        drop(g);
        token.writes.push(WriteRec {
            key,
            slot,
            kind: WriteKind::Update,
            created_stable: false,
        });
        Ok(old)
    }

    fn apply_insert(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<bool, StoreError> {
        match self.store.insert(key, value) {
            Ok(slot) => {
                token.writes.push(WriteRec {
                    key,
                    slot,
                    kind: WriteKind::Insert,
                    created_stable: false,
                });
                Ok(true)
            }
            Err(StoreError::DuplicateKey(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn apply_delete(&self, token: &mut TxnToken, key: Key) -> Result<Option<Value>, StoreError> {
        let mut g = self
            .store
            .locked_slot_of(key)
            .ok_or(StoreError::KeyNotFound(key))?;
        if g.live().is_none() {
            return Err(StoreError::KeyNotFound(key));
        }
        let slot = g.slot();
        let old = g.clear_live();
        self.store.unlink(key)?;
        drop(g);
        token.writes.push(WriteRec {
            key,
            slot,
            kind: WriteKind::Delete,
            created_stable: false,
        });
        Ok(old)
    }

    fn on_commit(&self, token: &mut TxnToken, _seq: CommitSeq, _commit: PhaseStamp) {
        let interval = self.upcoming.load(Ordering::Acquire);
        for w in &token.writes {
            self.tracker.mark(w.slot, interval);
            if w.kind == WriteKind::Delete {
                self.tombstones[(interval & 1) as usize].lock().push(w.key);
                // The full variant's snapshot must drop the record too
                // (the flush only visits dirty *live* slots).
                self.snapshot_set(w.slot, None);
                let g = self.store.lock_slot(w.slot);
                g.release_if_vacant();
            }
        }
    }

    fn on_abort(&self, token: &mut TxnToken, undo: &[UndoRec]) {
        let n = token.writes.len();
        debug_assert_eq!(undo.len(), n);
        for (i, u) in undo.iter().enumerate() {
            let w = &token.writes[n - 1 - i];
            match &u.img {
                UndoImage::Restore(v) => {
                    let mut g = self.store.lock_slot(w.slot);
                    g.set_live(v);
                }
                UndoImage::Remove => {
                    let _ = self.store.unlink(u.key);
                    let mut g = self.store.lock_slot(w.slot);
                    g.clear_live();
                    g.release_if_vacant();
                }
                UndoImage::Reinsert(v) => {
                    let mut g = self.store.lock_slot(w.slot);
                    g.set_live(v);
                    drop(g);
                    self.store.relink(u.key, w.slot);
                }
            }
        }
        let interval = self.upcoming.load(Ordering::Acquire);
        for w in &token.writes {
            self.tracker.mark(w.slot, interval);
            self.tracker.mark(w.slot, interval + 1);
        }
    }

    fn checkpoint(&self, env: &dyn EngineEnv, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        let start = Instant::now();
        let id = self.upcoming.load(Ordering::Acquire);
        let mut watermark = CommitSeq::ZERO;
        let mut dirty: Vec<SlotId> = Vec::new();
        let mut tombs: Vec<Key> = Vec::new();
        // Quiesce only to persist the dirty-record table and flip the
        // interval.
        let quiesce = env.quiesced(&mut || {
            watermark = self.log.last_seq();
            dirty = self.tracker.dirty_slots(id, self.store.slot_high_water());
            tombs = std::mem::take(&mut *self.tombstones[(id & 1) as usize].lock());
            if let Err(e) = self.persist_dirty_table(dir, id, &dirty) {
                // Harmless failure before the interval flipped: re-queue
                // the drained tombstones (no commit can race this — we are
                // quiesced) and drop the half-written dirty table; the
                // retry of interval `id` is then identical to this attempt.
                self.tombstones[(id & 1) as usize].lock().extend(tombs.drain(..));
                let _ = dir
                    .vfs()
                    .remove_file(&dir.path().join(format!(".dirtytab-{id:010}")));
                self.aborted.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
            self.upcoming.fetch_add(1, Ordering::Release);
            Ok(())
        })?;

        // Asynchronous flush: reads CURRENT live values — the fuzziness.
        let kind = if self.partial {
            CheckpointKind::Partial
        } else {
            CheckpointKind::Full
        };
        let threads = dir.checkpoint_threads();
        let result = if self.partial {
            let split = ShardPartition::over(dirty.len(), threads);
            capture_parts(dir, kind, id, watermark, &tombs, threads, |part, w, _cancel| {
                for &slot in &dirty[split.range(part)] {
                    let extracted = {
                        let g = self.store.lock_slot(slot);
                        if g.in_use() {
                            g.live().map(|l| (g.key(), l.to_vec()))
                        } else {
                            None
                        }
                    };
                    if let Some((key, v)) = extracted {
                        w.write_record(key, &v)?;
                    }
                }
                Ok(())
            })
        } else {
            // Merge dirty records into the in-memory snapshot (serial —
            // it is pure memory work), then stripe the snapshot write
            // over the capture threads.
            for &slot in &dirty {
                let current = {
                    let g = self.store.lock_slot(slot);
                    if g.in_use() {
                        g.live().map(|l| (g.key().0, l.to_vec().into_boxed_slice()))
                    } else {
                        None
                    }
                };
                self.snapshot_set(slot, current);
            }
            let snapshot = self.snapshot.as_ref().expect("full variant");
            let split = ShardPartition::over(self.store.slot_high_water(), threads);
            capture_parts(dir, kind, id, watermark, &[], threads, |part, w, _cancel| {
                for slot in split.range(part) {
                    let e = snapshot[slot].lock();
                    if let Some((k, v)) = e.as_ref() {
                        w.write_record(Key(*k), v)?;
                    }
                }
                Ok(())
            })
        };
        let summary = match result {
            Ok(s) => s,
            Err(e) => {
                // The interval already flipped (commits now mark id + 1),
                // so roll the failed cycle's consumed state *forward*:
                // re-mark its dirty set and tombstones into id + 1 — the
                // next flush reads then-current live values, which cover
                // everything this one would have (snapshot merges, where
                // already done, are idempotent) — and drop the now-orphaned
                // dirty table.
                for &slot in &dirty {
                    self.tracker.mark(slot, id + 1);
                }
                self.tombstones[((id + 1) & 1) as usize].lock().extend(tombs);
                let _ = dir
                    .vfs()
                    .remove_file(&dir.path().join(format!(".dirtytab-{id:010}")));
                self.tracker.clear(id);
                self.aborted.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        self.tracker.clear(id);
        Ok(CheckpointStats {
            id,
            kind,
            watermark,
            records: summary.records,
            bytes: summary.bytes,
            raw_bytes: summary.raw_bytes,
            duration: start.elapsed(),
            quiesce,
            parts: summary.parts,
        })
    }

    fn write_base_checkpoint(&self, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        let start = Instant::now();
        let id = self.upcoming.fetch_add(1, Ordering::AcqRel);
        let watermark = self.log.last_seq();
        let threads = dir.checkpoint_threads();
        let split = ShardPartition::over(self.store.slot_high_water(), threads);
        let summary = capture_parts(
            dir,
            CheckpointKind::Full,
            id,
            watermark,
            &[],
            threads,
            |part, w, _cancel| {
                for slot in split.range(part) {
                    let extracted = {
                        let g = self.store.lock_slot(slot as SlotId);
                        if g.in_use() {
                            g.live().map(|l| (g.key(), l.to_vec()))
                        } else {
                            None
                        }
                    };
                    if let Some((key, v)) = extracted {
                        w.write_record(key, &v)?;
                    }
                }
                Ok(())
            },
        )?;
        Ok(CheckpointStats {
            id,
            kind: CheckpointKind::Full,
            watermark,
            records: summary.records,
            bytes: summary.bytes,
            raw_bytes: summary.raw_bytes,
            duration: start.elapsed(),
            quiesce: std::time::Duration::ZERO,
            parts: summary.parts,
        })
    }

    fn resume_checkpoint_ids(&self, next_id: u64) {
        self.upcoming.fetch_max(next_id, Ordering::AcqRel);
    }

    fn aborted_cycles(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    fn memory(&self) -> MemoryStats {
        let mut m = self.store.memory();
        m.extra_bytes += self.snapshot_mem.bytes();
        m.extra_count += self.snapshot_mem.count();
        m.overhead_bytes += self.tracker.heap_bytes();
        m
    }
}

impl std::fmt::Debug for FuzzyStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(records={})", self.name(), self.store.len())
    }
}
