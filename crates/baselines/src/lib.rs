//! Comparison checkpointing algorithms from the paper's evaluation (§4.1).
//!
//! Each baseline implements [`calc_core::strategy::CheckpointStrategy`], so
//! the engine can run any of them interchangeably with CALC:
//!
//! * [`naive`] — **Naive Snapshot** (§4.1.1): exclusive-lock the whole
//!   database (quiesce), scan, write. Throughput drops to zero for the
//!   entire checkpoint; the checkpoint itself is fast because all resources
//!   serve it.
//! * [`fuzzy`] — **Fuzzy checkpointing** (§4.1.2): quiesce only long
//!   enough to persist the dirty-record table, then flush dirty records
//!   asynchronously. *Not transaction-consistent* — the paper's point is
//!   that without a database log this scheme cannot produce a recoverable
//!   consistent state; it is here as the familiar performance comparison.
//!   `pFuzzy` (the traditional form) writes only dirty records; full Fuzzy
//!   additionally maintains an in-memory latest-snapshot copy it merges
//!   into.
//! * [`ipp`] — **Interleaved Ping-Pong** (§4.1.3): triplicated data
//!   (state + odd/even arrays with dirty bits, stored contiguously per
//!   record), physical points of consistency, and a background merge
//!   into an in-memory last-consistent-snapshot (full IPP's 4th copy).
//! * [`zigzag`] — **Zig-Zag** (§4.1.4): two copies per record plus `MR`/
//!   `MW` bit vectors; `MW[k] = ¬MR[k]` at each physical point of
//!   consistency redirects post-point writes away from the copy the
//!   asynchronous checkpointer reads.
//!
//! Per the paper, IPP and Zig-Zag are implemented over the same
//! hash-table storage engine as CALC (keeping IPP's contiguous-copies
//! cache optimization) so the comparison is apples-to-apples, and all
//! four have partial variants using the same dirty-tracking machinery as
//! pCALC.
//!
//! Beyond the paper's four comparison points, [`mvcc`] implements the
//! §2.1 design-space alternative — **full multi-versioning** — whose
//! memory cost is the reason CALC uses precise *partial* multi-versioning
//! instead.

#![warn(missing_docs)]

pub mod fuzzy;
pub mod ipp;
pub mod mvcc;
pub mod naive;
pub mod zigzag;

pub use fuzzy::FuzzyStrategy;
pub use ipp::IppStrategy;
pub use mvcc::MvccStrategy;
pub use naive::NaiveStrategy;
pub use zigzag::ZigzagStrategy;
