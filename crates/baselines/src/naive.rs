//! Naive Snapshot (§4.1.1): quiesce the database, scan everything, write.
//!
//! "A naively taken snapshot involves acquiring an exclusive lock on the
//! entire database, iterating through every existing key, and writing its
//! corresponding value to disk." Throughput is zero for the whole
//! checkpoint; in exchange the checkpoint completes quickly and there is
//! no steady-state overhead at all. `pNaive` writes only records modified
//! since the previous checkpoint (still under full quiesce).

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use calc_common::types::{CommitSeq, Key, Value};
use calc_storage::dirty::{BitVecTracker, DirtyTracker};
use calc_storage::dual::{DualVersionStore, StoreConfig, StoreError};
use calc_storage::mem::MemoryStats;
use calc_txn::commitlog::{CommitLog, PhaseStamp};

use calc_core::file::CheckpointKind;
use calc_core::manifest::{CheckpointDir, PublishSummary};
use calc_core::partition::{capture_parts, ShardPartition};
use calc_core::strategy::{
    CheckpointStats, CheckpointStrategy, EngineEnv, TxnToken, UndoImage, UndoRec, WriteKind,
    WriteRec,
};

/// Naive Snapshot. The store is the same dual-version engine CALC uses,
/// but only live versions are ever touched.
pub struct NaiveStrategy {
    store: DualVersionStore,
    log: Arc<CommitLog>,
    partial: bool,
    tracker: Option<BitVecTracker>,
    tombstones: [Mutex<Vec<Key>>; 2],
    /// Id of the upcoming checkpoint; commits mark this interval.
    /// Incremented inside the quiesced section, so no commit can straddle
    /// it.
    upcoming: AtomicU64,
    /// Cycles that failed and were rolled back harmlessly.
    aborted: AtomicU64,
}

impl NaiveStrategy {
    /// Full-snapshot variant.
    pub fn full(config: StoreConfig, log: Arc<CommitLog>) -> Self {
        Self::new(config, log, false)
    }

    /// Partial-snapshot variant (pNaive).
    pub fn partial(config: StoreConfig, log: Arc<CommitLog>) -> Self {
        Self::new(config, log, true)
    }

    fn new(config: StoreConfig, log: Arc<CommitLog>, partial: bool) -> Self {
        let capacity = config.capacity;
        NaiveStrategy {
            store: DualVersionStore::new(config),
            log,
            partial,
            tracker: partial.then(|| BitVecTracker::new(capacity)),
            tombstones: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
            upcoming: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
        }
    }

    /// The underlying store (tests / diagnostics).
    pub fn store(&self) -> &DualVersionStore {
        &self.store
    }

    /// Full scan striped over `checkpoint_threads` capture threads (the
    /// database is quiesced, so the only concurrency is among the scan
    /// threads themselves, on disjoint slot ranges).
    fn write_full_scan(
        &self,
        dir: &CheckpointDir,
        id: u64,
        watermark: CommitSeq,
    ) -> io::Result<PublishSummary> {
        let threads = dir.checkpoint_threads();
        let split = ShardPartition::over(self.store.slot_high_water(), threads);
        capture_parts(
            dir,
            CheckpointKind::Full,
            id,
            watermark,
            &[],
            threads,
            |part, w, _cancel| {
                for slot in split.range(part) {
                    let extracted = {
                        let g = self.store.lock_slot(slot as calc_storage::SlotId);
                        if g.in_use() {
                            g.live().map(|l| (g.key(), l.to_vec()))
                        } else {
                            None
                        }
                    };
                    if let Some((key, v)) = extracted {
                        w.write_record(key, &v)?;
                    }
                }
                Ok(())
            },
        )
    }
}

impl CheckpointStrategy for NaiveStrategy {
    fn name(&self) -> &'static str {
        if self.partial {
            "pNaive"
        } else {
            "Naive"
        }
    }

    fn transaction_consistent(&self) -> bool {
        true // the whole checkpoint happens under quiesce
    }

    fn partial(&self) -> bool {
        self.partial
    }

    fn load_initial(&self, key: Key, value: &[u8]) -> Result<(), StoreError> {
        self.store.insert(key, value).map(|_| ())
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.store.get(key)
    }

    fn record_count(&self) -> usize {
        self.store.len()
    }

    fn txn_begin(&self) -> TxnToken {
        TxnToken {
            stamp: self.log.current_stamp(),
            writes: Vec::new(),
        }
    }

    fn txn_end(&self, _token: TxnToken) {}

    fn apply_write(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<Option<Value>, StoreError> {
        let mut g = self
            .store
            .locked_slot_of(key)
            .ok_or(StoreError::KeyNotFound(key))?;
        let slot = g.slot();
        let old = g.set_live(value);
        drop(g);
        token.writes.push(WriteRec {
            key,
            slot,
            kind: WriteKind::Update,
            created_stable: false,
        });
        Ok(old)
    }

    fn apply_insert(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<bool, StoreError> {
        match self.store.insert(key, value) {
            Ok(slot) => {
                token.writes.push(WriteRec {
                    key,
                    slot,
                    kind: WriteKind::Insert,
                    created_stable: false,
                });
                Ok(true)
            }
            Err(StoreError::DuplicateKey(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn apply_delete(&self, token: &mut TxnToken, key: Key) -> Result<Option<Value>, StoreError> {
        let mut g = self
            .store
            .locked_slot_of(key)
            .ok_or(StoreError::KeyNotFound(key))?;
        if g.live().is_none() {
            return Err(StoreError::KeyNotFound(key));
        }
        let slot = g.slot();
        let old = g.clear_live();
        self.store.unlink(key)?;
        drop(g);
        token.writes.push(WriteRec {
            key,
            slot,
            kind: WriteKind::Delete,
            created_stable: false,
        });
        Ok(old)
    }

    fn on_commit(&self, token: &mut TxnToken, _seq: CommitSeq, _commit: PhaseStamp) {
        let interval = self.upcoming.load(Ordering::Acquire);
        for w in &token.writes {
            if let Some(t) = &self.tracker {
                t.mark(w.slot, interval);
            }
            if w.kind == WriteKind::Delete {
                if self.partial {
                    self.tombstones[(interval & 1) as usize].lock().push(w.key);
                }
                let g = self.store.lock_slot(w.slot);
                g.release_if_vacant();
            }
        }
    }

    fn on_abort(&self, token: &mut TxnToken, undo: &[UndoRec]) {
        let n = token.writes.len();
        debug_assert_eq!(undo.len(), n);
        for (i, u) in undo.iter().enumerate() {
            let w = &token.writes[n - 1 - i];
            match &u.img {
                UndoImage::Restore(v) => {
                    let mut g = self.store.lock_slot(w.slot);
                    g.set_live(v);
                }
                UndoImage::Remove => {
                    let _ = self.store.unlink(u.key);
                    let mut g = self.store.lock_slot(w.slot);
                    g.clear_live();
                    g.release_if_vacant();
                }
                UndoImage::Reinsert(v) => {
                    let mut g = self.store.lock_slot(w.slot);
                    g.set_live(v);
                    drop(g);
                    self.store.relink(u.key, w.slot);
                }
            }
        }
        if let Some(t) = &self.tracker {
            let interval = self.upcoming.load(Ordering::Acquire);
            for w in &token.writes {
                t.mark(w.slot, interval);
                t.mark(w.slot, interval + 1);
            }
        }
    }

    fn checkpoint(&self, env: &dyn EngineEnv, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        let start = Instant::now();
        let id = self.upcoming.load(Ordering::Acquire);
        let mut summary = PublishSummary {
            records: 0,
            bytes: 0,
            raw_bytes: 0,
            parts: 0,
        };
        let mut watermark = CommitSeq::ZERO;
        // The entire checkpoint runs with the database exclusively locked.
        let quiesce = env.quiesced(&mut || {
            watermark = self.log.last_seq();
            if self.partial {
                let tracker = self.tracker.as_ref().expect("partial");
                // Drained up front so the failure path can restore them
                // (under quiesce no commit can race the push-back).
                let tombs = std::mem::take(&mut *self.tombstones[(id & 1) as usize].lock());
                let threads = dir.checkpoint_threads();
                let dirty = tracker.dirty_slots(id, self.store.slot_high_water());
                let split = ShardPartition::over(dirty.len(), threads);
                let result = capture_parts(
                    dir,
                    CheckpointKind::Partial,
                    id,
                    watermark,
                    &tombs,
                    threads,
                    |part, w, _cancel| {
                        for &slot in &dirty[split.range(part)] {
                            let extracted = {
                                let g = self.store.lock_slot(slot);
                                if g.in_use() {
                                    g.live().map(|l| (g.key(), l.to_vec()))
                                } else {
                                    None
                                }
                            };
                            if let Some((key, v)) = extracted {
                                w.write_record(key, &v)?;
                            }
                        }
                        Ok(())
                    },
                );
                match result {
                    Ok(s) => {
                        summary = s;
                        tracker.clear(id);
                    }
                    Err(e) => {
                        // Harmless failure: the dirty tracker was read
                        // non-destructively and `upcoming` never moved, so
                        // re-queuing the tombstones makes the retry of
                        // interval `id` identical to this attempt.
                        self.tombstones[(id & 1) as usize].lock().extend(tombs);
                        self.aborted.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                }
            } else {
                summary = self.write_full_scan(dir, id, watermark).inspect_err(|_| {
                    // Nothing was consumed; the retry is a fresh scan.
                    self.aborted.fetch_add(1, Ordering::Relaxed);
                })?;
            }
            self.upcoming.fetch_add(1, Ordering::Release);
            Ok(())
        })?;
        Ok(CheckpointStats {
            id,
            kind: if self.partial {
                CheckpointKind::Partial
            } else {
                CheckpointKind::Full
            },
            watermark,
            records: summary.records,
            bytes: summary.bytes,
            raw_bytes: summary.raw_bytes,
            duration: start.elapsed(),
            quiesce,
            parts: summary.parts,
        })
    }

    fn write_base_checkpoint(&self, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        let start = Instant::now();
        let id = self.upcoming.fetch_add(1, Ordering::AcqRel);
        let watermark = self.log.last_seq();
        let summary = self.write_full_scan(dir, id, watermark)?;
        Ok(CheckpointStats {
            id,
            kind: CheckpointKind::Full,
            watermark,
            records: summary.records,
            bytes: summary.bytes,
            raw_bytes: summary.raw_bytes,
            duration: start.elapsed(),
            quiesce: Duration::ZERO,
            parts: summary.parts,
        })
    }

    fn resume_checkpoint_ids(&self, next_id: u64) {
        self.upcoming.fetch_max(next_id, Ordering::AcqRel);
    }

    fn aborted_cycles(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    fn memory(&self) -> MemoryStats {
        let mut m = self.store.memory();
        if let Some(t) = &self.tracker {
            m.overhead_bytes += t.heap_bytes();
        }
        m
    }
}

impl std::fmt::Debug for NaiveStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(records={})", self.name(), self.store.len())
    }
}
