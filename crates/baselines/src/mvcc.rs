//! Full multi-versioning (MVCC) checkpointing — the §2.1 design-space
//! alternative that CALC exists to avoid.
//!
//! "Systems implementing snapshot isolation via MVCC implement full
//! multi-versioning. In such schemes, a full view of database state can be
//! obtained for any recent timestamp simply by selecting the latest
//! versions of each record whose timestamp precedes the chosen timestamp.
//! Since MVCC is specifically designed such that writes never block on
//! reads, a virtual point of consistency can be obtained inexpensively for
//! any timestamp. However ... many main memory database systems do not
//! implement full multi-versioning since memory is an important and
//! limited resource." (§2.1)
//!
//! This strategy makes that trade measurable: checkpoints are trivially
//! asynchronous (pick a watermark, scan versions ≤ watermark — no phases,
//! no stable copies, no quiesce), but every update appends a full version,
//! so memory between checkpoints grows with the *update count*, not the
//! record count. Garbage collection reclaims versions strictly older than
//! the last captured watermark once capture completes. The
//! `mvcc_memory` ablation bench and the memory comparisons in Figure 6's
//! harness quantify exactly why the paper prefers precise partial
//! multi-versioning (CALC) for update-heavy main-memory workloads.

use std::collections::{BTreeSet, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use calc_common::types::{CommitSeq, Key, Value};
use calc_storage::dual::{StoreConfig, StoreError};
use calc_storage::mem::{MemCounter, MemoryStats};
use calc_txn::commitlog::{CommitLog, PhaseStamp};

use calc_core::file::CheckpointKind;
use calc_core::manifest::CheckpointDir;
use calc_core::strategy::{
    CheckpointStats, CheckpointStrategy, EngineEnv, TxnToken, UndoRec, WriteKind, WriteRec,
};

/// One committed version: `None` value = deletion tombstone.
struct Version {
    seq: CommitSeq,
    value: Option<Value>,
}

struct Chain {
    /// Committed versions, ascending by seq.
    versions: Vec<Version>,
    /// The in-flight (uncommitted) version of the single transaction
    /// currently holding this record's exclusive lock.
    pending: Option<Option<Value>>,
}

impl Chain {
    fn latest_committed(&self) -> Option<&Value> {
        self.versions.last().and_then(|v| v.value.as_ref())
    }

    /// Latest version with `seq <= watermark`.
    fn at(&self, watermark: CommitSeq) -> Option<&Value> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.seq <= watermark)
            .and_then(|v| v.value.as_ref())
    }

    fn visible(&self) -> Option<&Value> {
        match &self.pending {
            Some(p) => p.as_ref(),
            None => self.latest_committed(),
        }
    }
}

/// One shard of the version-chain map.
type ChainShard = RwLock<HashMap<u64, Mutex<Chain>>>;

/// Tracks the highest sequence `S` such that every commit with
/// `seq <= S` has fully installed its versions into the chains.
///
/// The engine assigns the commit sequence (`CommitLog::append_commit`)
/// before the strategy's `on_commit` publishes the versions, so at any
/// instant `log.last_seq()` may name commits whose versions are not yet
/// visible. A checkpoint watermark taken from `last_seq()` would then
/// silently miss those commits. Installs can complete out of order
/// across workers; gaps park in `out_of_order` until contiguous.
struct InstalledPrefix {
    prefix: u64,
    out_of_order: BTreeSet<u64>,
}

impl InstalledPrefix {
    fn install(&mut self, seq: u64) {
        if seq == self.prefix + 1 {
            self.prefix = seq;
            while self.out_of_order.remove(&(self.prefix + 1)) {
                self.prefix += 1;
            }
        } else if seq > self.prefix {
            self.out_of_order.insert(seq);
        }
    }
}

/// Full-MVCC checkpointing. See module docs.
pub struct MvccStrategy {
    shards: Box<[ChainShard]>,
    shard_mask: usize,
    log: Arc<CommitLog>,
    /// Versions with `seq <` this are reclaimable (last captured
    /// watermark).
    gc_floor: AtomicU64,
    next_id: AtomicU64,
    version_mem: MemCounter,
    live_records: AtomicU64,
    installed: Mutex<InstalledPrefix>,
}

impl MvccStrategy {
    /// Creates the strategy. `config` is used only for shard sizing —
    /// MVCC has no fixed slot arena; memory scales with versions.
    pub fn new(config: StoreConfig, log: Arc<CommitLog>) -> Self {
        let n_shards = config.shards.max(1).next_power_of_two();
        let base_seq = log.last_seq().0;
        MvccStrategy {
            shards: (0..n_shards)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            shard_mask: n_shards - 1,
            log,
            gc_floor: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            version_mem: MemCounter::new(),
            live_records: AtomicU64::new(0),
            installed: Mutex::new(InstalledPrefix {
                prefix: base_seq,
                out_of_order: BTreeSet::new(),
            }),
        }
    }

    #[inline]
    fn shard_of(&self, key: Key) -> &ChainShard {
        let h = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48;
        &self.shards[h as usize & self.shard_mask]
    }

    /// Total committed versions currently held (the memory-cost metric).
    pub fn version_count(&self) -> usize {
        self.version_mem.count()
    }

    fn with_chain<R>(&self, key: Key, f: impl FnOnce(&mut Chain) -> R) -> Option<R> {
        let shard = self.shard_of(key).read();
        let chain = shard.get(&key.0)?;
        let mut g = chain.lock();
        Some(f(&mut g))
    }

    fn ensure_chain<R>(&self, key: Key, f: impl FnOnce(&mut Chain) -> R) -> R {
        {
            let shard = self.shard_of(key).read();
            if let Some(chain) = shard.get(&key.0) {
                return f(&mut chain.lock());
            }
        }
        let mut shard = self.shard_of(key).write();
        let chain = shard.entry(key.0).or_insert_with(|| {
            Mutex::new(Chain {
                versions: Vec::new(),
                pending: None,
            })
        });
        let mut g = chain.lock();
        let result = f(&mut g);
        drop(g);
        result
    }

    fn record_version_alloc(&self, v: &Option<Value>) {
        self.version_mem
            .add(v.as_ref().map(|b| b.len()).unwrap_or(0) + std::mem::size_of::<Version>());
    }

    fn record_version_free(&self, v: &Option<Value>) {
        self.version_mem
            .sub(v.as_ref().map(|b| b.len()).unwrap_or(0) + std::mem::size_of::<Version>());
    }
}

impl CheckpointStrategy for MvccStrategy {
    fn name(&self) -> &'static str {
        "MVCC"
    }

    fn transaction_consistent(&self) -> bool {
        true
    }

    fn partial(&self) -> bool {
        false
    }

    fn load_initial(&self, key: Key, value: &[u8]) -> Result<(), StoreError> {
        let v = Some(value.to_vec().into_boxed_slice());
        self.record_version_alloc(&v);
        let dup = self.ensure_chain(key, |chain| {
            if chain.latest_committed().is_some() {
                true
            } else {
                chain.versions.push(Version {
                    seq: CommitSeq::ZERO,
                    value: v,
                });
                false
            }
        });
        if dup {
            // The closure dropped the version without pushing it.
            self.version_mem
                .sub(value.len() + std::mem::size_of::<Version>());
            return Err(StoreError::DuplicateKey(key));
        }
        self.live_records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.with_chain(key, |c| c.visible().cloned()).flatten()
    }

    fn record_count(&self) -> usize {
        self.live_records.load(Ordering::Relaxed) as usize
    }

    fn txn_begin(&self) -> TxnToken {
        TxnToken {
            stamp: self.log.current_stamp(),
            writes: Vec::new(),
        }
    }

    fn txn_end(&self, _token: TxnToken) {}

    fn apply_write(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<Option<Value>, StoreError> {
        let new = Some(value.to_vec().into_boxed_slice());
        let old = self
            .with_chain(key, |chain| {
                if chain.visible().is_none() {
                    return Err(StoreError::KeyNotFound(key));
                }
                let old = chain.visible().cloned();
                // Overwrite of our own pending version replaces it.
                chain.pending = Some(new);
                Ok(old)
            })
            .ok_or(StoreError::KeyNotFound(key))??;
        token.writes.push(WriteRec {
            key,
            slot: 0,
            kind: WriteKind::Update,
            created_stable: false,
        });
        Ok(old)
    }

    fn apply_insert(
        &self,
        token: &mut TxnToken,
        key: Key,
        value: &[u8],
    ) -> Result<bool, StoreError> {
        let inserted = self.ensure_chain(key, |chain| {
            if chain.visible().is_some() {
                false
            } else {
                chain.pending = Some(Some(value.to_vec().into_boxed_slice()));
                true
            }
        });
        if inserted {
            self.live_records.fetch_add(1, Ordering::Relaxed);
            token.writes.push(WriteRec {
                key,
                slot: 0,
                kind: WriteKind::Insert,
                created_stable: false,
            });
        }
        Ok(inserted)
    }

    fn apply_delete(&self, token: &mut TxnToken, key: Key) -> Result<Option<Value>, StoreError> {
        let old = self
            .with_chain(key, |chain| {
                let old = chain.visible().cloned();
                if old.is_none() {
                    return Err(StoreError::KeyNotFound(key));
                }
                chain.pending = Some(None); // tombstone
                Ok(old)
            })
            .ok_or(StoreError::KeyNotFound(key))??;
        self.live_records.fetch_sub(1, Ordering::Relaxed);
        token.writes.push(WriteRec {
            key,
            slot: 0,
            kind: WriteKind::Delete,
            created_stable: false,
        });
        Ok(old)
    }

    fn on_commit(&self, token: &mut TxnToken, seq: CommitSeq, _commit: PhaseStamp) {
        // Promote pending versions to committed versions stamped with the
        // commit sequence — the MVCC timestamp.
        for w in &token.writes {
            self.with_chain(w.key, |chain| {
                if let Some(pending) = chain.pending.take() {
                    self.record_version_alloc(&pending);
                    chain.versions.push(Version {
                        seq,
                        value: pending,
                    });
                }
            });
        }
        // Only now is this commit's state fully visible; advance the
        // watermark frontier checkpoints are allowed to claim.
        self.installed.lock().install(seq.0);
    }

    fn on_abort(&self, token: &mut TxnToken, _undo: &[UndoRec]) {
        // MVCC rollback is trivial: drop the pending versions.
        for w in &token.writes {
            self.with_chain(w.key, |chain| {
                chain.pending = None;
            });
            match w.kind {
                WriteKind::Insert => {
                    self.live_records.fetch_sub(1, Ordering::Relaxed);
                }
                WriteKind::Delete => {
                    self.live_records.fetch_add(1, Ordering::Relaxed);
                }
                WriteKind::Update => {}
            }
        }
    }

    fn checkpoint(&self, _env: &dyn EngineEnv, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        // The §2.1 promise: a virtual point of consistency for free.
        let start = Instant::now();
        let id = self.next_id.fetch_add(1, Ordering::AcqRel);
        // Not `log.last_seq()`: a worker between sequence assignment and
        // version installation would make that watermark a lie. The
        // installed prefix is the highest seq whose effects (and all
        // predecessors') are guaranteed visible to the scan below.
        let watermark = CommitSeq(self.installed.lock().prefix);
        let mut pending = dir.begin(CheckpointKind::Full, id, watermark)?;
        for shard in self.shards.iter() {
            // Collect keys first so the shard lock is not held across
            // record writes.
            let keys: Vec<u64> = shard.read().keys().copied().collect();
            for k in keys {
                let value = self
                    .with_chain(Key(k), |chain| chain.at(watermark).cloned())
                    .flatten();
                if let Some(v) = value {
                    pending.writer().write_record(Key(k), &v)?;
                }
            }
        }
        let (records, bytes) = pending.publish()?;

        // GC: versions strictly older than the captured watermark are no
        // longer needed (the newest ≤ watermark must be kept — it may be
        // the current value).
        let floor = watermark;
        self.gc_floor.store(floor.0, Ordering::Release);
        for shard in self.shards.iter() {
            let guard = shard.read();
            for chain in guard.values() {
                let mut c = chain.lock();
                // Find the newest index with seq <= floor; drop everything
                // before it.
                let keep_from = c
                    .versions
                    .iter()
                    .rposition(|v| v.seq <= floor)
                    .unwrap_or(0);
                for v in c.versions.drain(..keep_from) {
                    self.record_version_free(&v.value);
                }
            }
        }
        Ok(CheckpointStats {
            id,
            kind: CheckpointKind::Full,
            watermark,
            records,
            bytes,
            // Legacy single-file publish reports no raw size.
            raw_bytes: bytes,
            duration: start.elapsed(),
            quiesce: std::time::Duration::ZERO,
            parts: 1,
        })
    }

    fn write_base_checkpoint(&self, dir: &CheckpointDir) -> io::Result<CheckpointStats> {
        self.checkpoint(&calc_core::strategy::NoopEnv, dir)
    }

    fn resume_checkpoint_ids(&self, next_id: u64) {
        self.next_id.fetch_max(next_id, Ordering::AcqRel);
    }

    fn memory(&self) -> MemoryStats {
        let live = self.record_count();
        let total_versions = self.version_mem.count();
        MemoryStats {
            // Attribute one version per live record as "live" and the rest
            // as the multi-versioning surplus.
            live_bytes: 0,
            live_count: live.min(total_versions),
            extra_bytes: self.version_mem.bytes(),
            extra_count: total_versions.saturating_sub(live.min(total_versions)),
            overhead_bytes: 0,
        }
    }
}

impl std::fmt::Debug for MvccStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MVCC(records={}, versions={})",
            self.record_count(),
            self.version_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calc_common::types::TxnId;
    use calc_core::strategy::NoopEnv;
    use calc_core::throttle::Throttle;
    use calc_txn::proc::ProcId;

    fn setup() -> (MvccStrategy, Arc<CommitLog>) {
        let log = Arc::new(CommitLog::new(false));
        let s = MvccStrategy::new(StoreConfig::for_records(256, 32), log.clone());
        (s, log)
    }

    fn commit(s: &MvccStrategy, log: &CommitLog, token: &mut TxnToken) -> CommitSeq {
        let (seq, stamp) = log.append_commit(TxnId(0), ProcId(0), Arc::from(&b""[..]));
        s.on_commit(token, seq, stamp);
        seq
    }

    fn dir(name: &str) -> CheckpointDir {
        let d = std::env::temp_dir().join(format!(
            "calc-mvcc-{}-{}-{name}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_dir_all(&d);
        CheckpointDir::open(&d, Arc::new(Throttle::unlimited())).unwrap()
    }

    #[test]
    fn versions_accumulate_and_reads_see_latest() {
        let (s, log) = setup();
        s.load_initial(Key(1), b"v0").unwrap();
        for i in 1..=5u64 {
            let mut t = s.txn_begin();
            s.apply_write(&mut t, Key(1), format!("v{i}").as_bytes())
                .unwrap();
            commit(&s, &log, &mut t);
            s.txn_end(t);
        }
        assert_eq!(s.get(Key(1)).as_deref(), Some(&b"v5"[..]));
        assert_eq!(s.version_count(), 6, "full multi-versioning keeps all");
    }

    #[test]
    fn checkpoint_captures_watermark_and_gc_reclaims() {
        let (s, log) = setup();
        s.load_initial(Key(1), b"v0").unwrap();
        let mut t = s.txn_begin();
        s.apply_write(&mut t, Key(1), b"v1").unwrap();
        commit(&s, &log, &mut t);
        s.txn_end(t);

        let d = dir("wm");
        let stats = s.checkpoint(&NoopEnv, &d).unwrap();
        assert_eq!(stats.records, 1);
        // Post-checkpoint write; old versions below the watermark are gone.
        let mut t = s.txn_begin();
        s.apply_write(&mut t, Key(1), b"v2").unwrap();
        commit(&s, &log, &mut t);
        s.txn_end(t);
        assert_eq!(s.version_count(), 2, "v0 reclaimed, v1+v2 remain");

        let entries = d.scan().unwrap()[0].read_all().unwrap();
        assert_eq!(
            entries,
            vec![calc_core::file::RecordEntry::Value(
                Key(1),
                b"v1".to_vec().into_boxed_slice()
            )]
        );
    }

    #[test]
    fn pending_version_invisible_until_commit_and_dropped_on_abort() {
        let (s, log) = setup();
        s.load_initial(Key(1), b"committed").unwrap();
        let mut t = s.txn_begin();
        s.apply_write(&mut t, Key(1), b"mine").unwrap();
        // Own write visible to the transaction (via get), which models
        // read-your-writes under the exclusive lock.
        assert_eq!(s.get(Key(1)).as_deref(), Some(&b"mine"[..]));
        s.on_abort(&mut t, &[]);
        s.txn_end(t);
        assert_eq!(s.get(Key(1)).as_deref(), Some(&b"committed"[..]));
        assert_eq!(s.version_count(), 1);
        let _ = log;
    }

    #[test]
    fn insert_delete_tombstones() {
        let (s, log) = setup();
        let mut t = s.txn_begin();
        assert!(s.apply_insert(&mut t, Key(9), b"x").unwrap());
        assert!(!s.apply_insert(&mut t, Key(9), b"y").unwrap());
        commit(&s, &log, &mut t);
        s.txn_end(t);
        assert_eq!(s.record_count(), 1);

        let mut t = s.txn_begin();
        s.apply_delete(&mut t, Key(9)).unwrap();
        commit(&s, &log, &mut t);
        s.txn_end(t);
        assert!(s.get(Key(9)).is_none());
        assert_eq!(s.record_count(), 0);

        // The deleted record is absent from a new checkpoint.
        let d = dir("tomb");
        let stats = s.checkpoint(&NoopEnv, &d).unwrap();
        assert_eq!(stats.records, 0);
    }

    #[test]
    fn memory_grows_with_updates_not_records() {
        // The paper's point: 100 records but 1100 versions between
        // checkpoints.
        let (s, log) = setup();
        for k in 0..100u64 {
            s.load_initial(Key(k), &[0u8; 50]).unwrap();
        }
        for round in 0..10 {
            for k in 0..100u64 {
                let mut t = s.txn_begin();
                s.apply_write(&mut t, Key(k), &[round as u8; 50]).unwrap();
                commit(&s, &log, &mut t);
                s.txn_end(t);
            }
        }
        assert_eq!(s.version_count(), 1100);
        let m = s.memory();
        assert!(m.extra_count >= 1000, "multi-versioning surplus visible");
        // A checkpoint GCs back towards one version per record.
        let d = dir("gc");
        s.checkpoint(&NoopEnv, &d).unwrap();
        assert_eq!(s.version_count(), 100);
    }

    #[test]
    fn checkpoint_is_consistent_under_concurrent_writers() {
        use std::sync::atomic::AtomicBool;
        let (s, log) = setup();
        let s = Arc::new(s);
        for k in 0..50u64 {
            s.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let journal = Arc::new(Mutex::new(Vec::<(CommitSeq, u64, u64)>::new()));
        let locks = Arc::new(calc_txn::locks::LockManager::new(16));
        let workers: Vec<_> = (0..3u64)
            .map(|t| {
                let s = s.clone();
                let log = log.clone();
                let stop = stop.clone();
                let journal = journal.clone();
                let locks = locks.clone();
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let k = (t * 1000 + i) % 50;
                        let guard = locks.acquire(&[(Key(k), calc_txn::locks::LockMode::Exclusive)]);
                        let mut tok = s.txn_begin();
                        let val = t * 1_000_000 + i;
                        s.apply_write(&mut tok, Key(k), &val.to_le_bytes()).unwrap();
                        let (seq, stamp) =
                            log.append_commit(TxnId(val), ProcId(0), Arc::from(&b""[..]));
                        s.on_commit(&mut tok, seq, stamp);
                        journal.lock().push((seq, k, val));
                        drop(guard);
                        s.txn_end(tok);
                        i += 1;
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(30));
        let d = dir("concurrent");
        let stats = s.checkpoint(&NoopEnv, &d).unwrap();
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        // Model state at the watermark.
        let mut entries = journal.lock().clone();
        entries.sort();
        let mut model: std::collections::BTreeMap<u64, u64> =
            (0..50).map(|k| (k, 0)).collect();
        for (seq, k, v) in entries {
            if seq <= stats.watermark {
                model.insert(k, v);
            }
        }
        let got = d.scan().unwrap()[0].read_all().unwrap();
        assert_eq!(got.len(), 50);
        for e in got {
            if let calc_core::file::RecordEntry::Value(k, v) = e {
                let val = u64::from_le_bytes(v[..8].try_into().unwrap());
                assert_eq!(val, model[&k.0], "key {k:?} diverged");
            }
        }
    }
}
