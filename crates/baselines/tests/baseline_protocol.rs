//! Protocol-level consistency tests for the baseline checkpointers,
//! mirroring `calc-core/tests/calc_protocol.rs`.
//!
//! Naive, IPP, and Zig-Zag claim transaction consistency via physical
//! points of consistency: their checkpoints must equal the journal prefix
//! at the quiesce watermark. Fuzzy is *not* transaction-consistent (the
//! paper's point); for it we assert the only guarantee it actually has —
//! every value in the checkpoint was *written* at some time (possibly by
//! a transaction that later aborted: the flush dirty-reads live data) —
//! and that it self-reports `transaction_consistent() == false`.

use std::collections::{BTreeMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use calc_baselines::{FuzzyStrategy, IppStrategy, NaiveStrategy, ZigzagStrategy};
use calc_common::rng::SplitMix;
use calc_common::types::{CommitSeq, Key, TxnId, Value};
use calc_core::file::CheckpointKind;
use calc_core::manifest::CheckpointDir;
use calc_core::merge::{apply_entry, materialize_chain};
use calc_core::strategy::{CheckpointStrategy, EngineEnv, UndoImage, UndoRec};
use calc_core::throttle::Throttle;
use calc_storage::dual::StoreConfig;
use calc_txn::commitlog::CommitLog;
use calc_txn::locks::{LockManager, LockMode};
use calc_txn::proc::ProcId;

/// Test engine env: an admission RwLock. Workers hold read access per
/// transaction; `quiesced` takes write access (blocking new transactions
/// and waiting for active ones — a physical point of consistency).
struct GateEnv {
    gate: RwLock<()>,
}

impl GateEnv {
    fn new() -> Self {
        GateEnv {
            gate: RwLock::new(()),
        }
    }
}

impl EngineEnv for GateEnv {
    fn quiesced(&self, f: &mut dyn FnMut() -> io::Result<()>) -> io::Result<Duration> {
        let start = Instant::now();
        let _w = self.gate.write();
        f()?;
        Ok(start.elapsed())
    }
}

/// Journal of committed ops: `(seq, [(key, Some(value) | None=delete)])`.
type Journal = parking_lot::Mutex<Vec<(CommitSeq, Vec<(Key, Option<Value>)>)>>;

struct Harness {
    strategy: Arc<dyn CheckpointStrategy>,
    log: Arc<CommitLog>,
    locks: Arc<LockManager>,
    env: Arc<GateEnv>,
    journal: Journal,
    /// Every value ever *written* per key — including by transactions
    /// that later aborted. Fuzzy's asynchronous flush reads live data and
    /// can legitimately capture uncommitted values (the dirty-read
    /// anomaly that makes log-less fuzzy checkpoints unrecoverable).
    attempted: parking_lot::Mutex<BTreeMap<Key, HashSet<Vec<u8>>>>,
    initial: BTreeMap<Key, Value>,
}

fn build(make: impl FnOnce(StoreConfig, Arc<CommitLog>) -> Arc<dyn CheckpointStrategy>, n_keys: u64) -> Harness {
    let log = Arc::new(CommitLog::new(false));
    // Generous slot headroom: IPP (always) and Zig-Zag (during capture)
    // retain a deleted record's slot until the next checkpoint consumes
    // its dirty bit, so insert/delete churn needs O(deletes per
    // checkpoint interval) spare slots — a real property of those
    // algorithms, not a bug.
    let config = StoreConfig::for_records((n_keys as usize) * 4 + 60_000, 32);
    let strategy = make(config, log.clone());
    let mut initial = BTreeMap::new();
    for k in 0..n_keys {
        let v: Value = format!("init-{k}").into_bytes().into_boxed_slice();
        strategy.load_initial(Key(k), &v).unwrap();
        initial.insert(Key(k), v);
    }
    Harness {
        strategy,
        log,
        locks: Arc::new(LockManager::new(64)),
        env: Arc::new(GateEnv::new()),
        journal: parking_lot::Mutex::new(Vec::new()),
        attempted: parking_lot::Mutex::new(BTreeMap::new()),
        initial,
    }
}

fn run_txn(h: &Harness, rng: &mut SplitMix, thread: u64, iter: u64, key_space: u64, with_id: bool) {
    // Admission: a transaction holds read access for its whole lifetime,
    // including the commit hook.
    let _admission = h.env.gate.read();
    let mut keys: Vec<Key> = (0..4).map(|_| Key(rng.next_below(key_space))).collect();
    let ext_key = Key(key_space + rng.next_below(key_space / 4 + 1));
    let do_ext = with_id && rng.chance(0.4);
    if do_ext {
        keys.push(ext_key);
    }
    let lockset: Vec<(Key, LockMode)> = keys.iter().map(|&k| (k, LockMode::Exclusive)).collect();
    let guard = h.locks.acquire(&lockset);

    let mut token = h.strategy.txn_begin();
    let mut undo: Vec<UndoRec> = Vec::new();
    let mut ops: Vec<(Key, Option<Value>)> = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        if k == ext_key && do_ext {
            if h.strategy.get(k).is_some() {
                let old = h.strategy.apply_delete(&mut token, k).unwrap().unwrap();
                undo.push(UndoRec {
                    key: k,
                    img: UndoImage::Reinsert(old),
                });
                ops.push((k, None));
            } else {
                let v = format!("ins-{thread}-{iter}").into_bytes();
                assert!(h.strategy.apply_insert(&mut token, k, &v).unwrap());
                undo.push(UndoRec {
                    key: k,
                    img: UndoImage::Remove,
                });
                ops.push((k, Some(v.into_boxed_slice())));
            }
        } else {
            let v = format!("v-{thread}-{iter}-{i}").into_bytes();
            if let Ok(old) = h.strategy.apply_write(&mut token, k, &v) {
                undo.push(UndoRec {
                    key: k,
                    img: UndoImage::Restore(old.expect("update of existing key")),
                });
                ops.push((k, Some(v.into_boxed_slice())));
            }
        }
    }
    {
        let mut attempted = h.attempted.lock();
        for (k, v) in &ops {
            if let Some(v) = v {
                attempted.entry(*k).or_default().insert(v.to_vec());
            }
        }
    }
    if rng.chance(0.1) {
        undo.reverse();
        h.strategy.on_abort(&mut token, &undo);
    } else {
        let (seq, stamp) =
            h.log
                .append_commit(TxnId(thread * 1_000_000 + iter), ProcId(0), Arc::from(&b""[..]));
        h.strategy.on_commit(&mut token, seq, stamp);
        h.journal.lock().push((seq, ops));
    }
    drop(guard);
    h.strategy.txn_end(token);
}

fn state_at(h: &Harness, watermark: CommitSeq) -> BTreeMap<Key, Value> {
    let mut entries = h.journal.lock().clone();
    entries.sort_by_key(|(s, _)| *s);
    let mut state = h.initial.clone();
    for (seq, ops) in entries {
        if seq > watermark {
            break;
        }
        for (k, v) in ops {
            match v {
                Some(v) => {
                    state.insert(k, v);
                }
                None => {
                    state.remove(&k);
                }
            }
        }
    }
    state
}

fn dirs(name: &str) -> CheckpointDir {
    let d = std::env::temp_dir().join(format!(
        "calc-baseline-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    let _ = std::fs::remove_dir_all(&d);
    CheckpointDir::open(&d, Arc::new(Throttle::unlimited())).unwrap()
}

fn stress(
    make: impl FnOnce(StoreConfig, Arc<CommitLog>) -> Arc<dyn CheckpointStrategy>,
    name: &str,
    with_insert_delete: bool,
    seed: u64,
) {
    let n_keys = 200u64;
    let h = Arc::new(build(make, n_keys));
    let dir = Arc::new(dirs(name));
    let partial = h.strategy.partial();
    if partial {
        h.strategy.write_base_checkpoint(&dir).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let h = h.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rng = SplitMix::new(seed * 100 + t);
                let mut iter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    run_txn(&h, &mut rng, t, iter, n_keys, with_insert_delete);
                    iter += 1;
                }
            })
        })
        .collect();

    for _ in 0..3 {
        std::thread::sleep(Duration::from_millis(30));
        h.strategy.checkpoint(h.env.as_ref(), &dir).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    let metas = dir.scan().unwrap();
    assert!(!metas.is_empty());
    if h.strategy.transaction_consistent() {
        if partial {
            let base = metas
                .iter()
                .find(|m| m.kind == CheckpointKind::Full)
                .expect("base full");
            for (i, upto) in metas
                .iter()
                .enumerate()
                .filter(|(_, m)| m.kind == CheckpointKind::Partial)
            {
                let chain: Vec<_> = metas[..=i]
                    .iter()
                    .filter(|m| m.kind == CheckpointKind::Partial)
                    .cloned()
                    .collect();
                let got = materialize_chain(base, &chain).unwrap();
                let expected = state_at(&h, upto.watermark);
                assert_eq!(got, expected, "{name}: partial chain through {} diverged", upto.id);
            }
        } else {
            for meta in &metas {
                let mut got = BTreeMap::new();
                for e in meta.read_all().unwrap() {
                    apply_entry(&mut got, e);
                }
                let expected = state_at(&h, meta.watermark);
                assert_eq!(got, expected, "{name}: checkpoint {} diverged", meta.id);
            }
        }
    } else {
        // Fuzzy: the only guarantee it actually has — every checkpointed
        // value was *written* at some point (initial, committed, or even
        // uncommitted-then-aborted: the asynchronous flush reads live
        // data, which is precisely the dirty-read anomaly that makes
        // log-less fuzzy checkpoints unrecoverable, §2.1).
        let mut ever: BTreeMap<Key, HashSet<Vec<u8>>> = BTreeMap::new();
        for (k, v) in &h.initial {
            ever.entry(*k).or_default().insert(v.to_vec());
        }
        for (k, set) in h.attempted.lock().iter() {
            ever.entry(*k).or_default().extend(set.iter().cloned());
        }
        for meta in &metas {
            for e in meta.read_all().unwrap() {
                if let calc_core::file::RecordEntry::Value(k, v) = e {
                    assert!(
                        ever.get(&k).is_some_and(|set| set.contains(&v.to_vec())),
                        "{name}: fuzzy checkpoint contains a value never written for {k:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn naive_full_consistent() {
    stress(|c, l| Arc::new(NaiveStrategy::full(c, l)), "naive-full", true, 1);
}

#[test]
fn naive_partial_consistent() {
    stress(|c, l| Arc::new(NaiveStrategy::partial(c, l)), "naive-part", true, 2);
}

#[test]
fn zigzag_full_consistent() {
    stress(|c, l| Arc::new(ZigzagStrategy::full(c, l)), "zz-full", true, 3);
}

#[test]
fn zigzag_partial_consistent() {
    stress(|c, l| Arc::new(ZigzagStrategy::partial(c, l)), "zz-part", true, 4);
}

#[test]
fn ipp_full_consistent() {
    stress(|c, l| Arc::new(IppStrategy::full(c, l)), "ipp-full", true, 5);
}

#[test]
fn ipp_partial_consistent() {
    stress(|c, l| Arc::new(IppStrategy::partial(c, l)), "ipp-part", true, 6);
}

#[test]
fn fuzzy_partial_weak_guarantees() {
    stress(|c, l| Arc::new(FuzzyStrategy::partial(c, l)), "fuzzy-part", false, 7);
}

#[test]
fn fuzzy_full_weak_guarantees() {
    stress(|c, l| Arc::new(FuzzyStrategy::full(c, l)), "fuzzy-full", false, 8);
}

#[test]
fn fuzzy_reports_not_transaction_consistent() {
    let log = Arc::new(CommitLog::new(false));
    let f = FuzzyStrategy::partial(StoreConfig::for_records(16, 16), log);
    assert!(!f.transaction_consistent());
}

#[test]
fn update_only_consistency_all_tc_strategies() {
    stress(|c, l| Arc::new(NaiveStrategy::full(c, l)), "upd-naive", false, 10);
    stress(|c, l| Arc::new(ZigzagStrategy::full(c, l)), "upd-zz", false, 11);
    stress(|c, l| Arc::new(IppStrategy::full(c, l)), "upd-ipp", false, 12);
}
