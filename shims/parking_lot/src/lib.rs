//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! provides the exact API subset the workspace uses — `Mutex`,
//! `MutexGuard`, `RwLock`, `Condvar` — backed by `std::sync`. Semantics
//! match parking_lot where it matters here:
//!
//! * no lock poisoning: a panic while holding a guard does not poison the
//!   lock for other threads (poison errors are swallowed via
//!   `PoisonError::into_inner`);
//! * `Condvar::wait` takes `&mut MutexGuard` rather than consuming it;
//! * `RwLock` writer acquisition blocks new readers (std's futex-based
//!   rwlock does not starve writers), which the engine's admission gate
//!   relies on for quiesce.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock that never poisons.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(PoisonError::into_inner),
        ))
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive access.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Outcome of [`Condvar::wait_for`]: whether the wait hit its timeout
/// (parking_lot signature).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and waits for a notification;
    /// the lock is re-acquired before returning (parking_lot signature:
    /// the guard is borrowed, not consumed).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Atomically releases the guard's lock and waits for a notification
    /// or the timeout, whichever comes first; the lock is re-acquired
    /// before returning.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip_and_no_poison() {
        let m = Arc::new(Mutex::new(0u32));
        *m.lock() += 1;
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable after a panicked holder.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
