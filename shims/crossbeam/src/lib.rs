//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the exact API subset the workspace uses:
//! [`channel`] (MPMC bounded/unbounded channels), [`queue::SegQueue`], and
//! [`utils::CachePadded`]. Implementations favour simplicity over the
//! lock-free performance of the real crate — a mutex + condvars is plenty
//! for the submission-queue and command-log paths here, whose costs are
//! dominated by transaction execution and IO.

/// MPMC channels with the crossbeam-channel surface.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        buf: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending side of a channel. Clonable (multi-producer).
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving side of a channel. Clonable (multi-consumer).
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// The channel is disconnected (all receivers dropped); the value is
    /// returned to the caller.
    pub struct SendError<T>(pub T);

    /// The channel is empty and disconnected (all senders dropped).
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    /// Why a timed receive returned without a value.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                buf: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    /// Creates a channel holding at most `cap` in-flight messages; sends
    /// block when full (backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap.max(1)))
    }

    /// Creates a channel with an unbounded buffer; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut g = self
                .0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if g.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = g.cap.is_some_and(|c| g.buf.len() >= c);
                if !full {
                    g.buf.push_back(value);
                    drop(g);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                g = self
                    .0
                    .not_full
                    .wait(g)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or every sender
        /// is dropped and the buffer is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self
                .0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = g.buf.pop_front() {
                    drop(g);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self
                    .0
                    .not_empty
                    .wait(g)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Like [`Receiver::recv`] but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut g = self
                .0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = g.buf.pop_front() {
                    drop(g);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .0
                    .not_empty
                    .wait_timeout(g, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                g = guard;
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self
                .0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            g.senders -= 1;
            if g.senders == 0 {
                drop(g);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut g = self
                .0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            g.receivers -= 1;
            if g.receivers == 0 {
                drop(g);
                self.0.not_full.notify_all();
            }
        }
    }
}

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::{Mutex, PoisonError};

    /// An unbounded MPMC queue (mutex-backed stand-in for crossbeam's
    /// segmented lock-free queue).
    pub struct SegQueue<T>(Mutex<VecDeque<T>>);

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub const fn new() -> Self {
            SegQueue(Mutex::new(VecDeque::new()))
        }

        /// Appends an element.
        pub fn push(&self, value: T) {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
        }

        /// Removes the oldest element, if any.
        pub fn pop(&self) -> Option<T> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.0.lock().unwrap_or_else(PoisonError::into_inner).len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }
}

/// Low-level utilities.
pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so neighbouring values never
    /// share a cache line (false-sharing avoidance).
    #[derive(Default, Debug)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps a value.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        #[inline]
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        #[inline]
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use super::queue::SegQueue;
    use std::time::Duration;

    #[test]
    fn unbounded_mpmc_roundtrip() {
        let (tx, rx) = unbounded::<u32>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(got.len(), 400);
    }

    #[test]
    fn bounded_applies_backpressure_and_disconnect() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(3)) // blocks until a recv
        };
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn segqueue_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
