//! Offline stand-in for the `criterion` benchmark crate.
//!
//! Implements the API subset used by `crates/bench`: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::{iter, iter_with_setup}`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Instead of criterion's statistical analysis it runs a short warmup,
//! then a fixed number of timed samples, and prints the median ns/iter
//! (plus derived throughput when one was declared).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration workload size, used to derive throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id consisting of the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timing loop for a single benchmark.
pub struct Bencher {
    /// Total time spent in the measured routine for this sample.
    elapsed: Duration,
    /// Iterations to run per sample.
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the sample's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Like [`Bencher::iter`], but runs `setup` outside the timed region
    /// before every invocation of `routine`.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

const DEFAULT_SAMPLES: usize = 10;
const WARMUP_ITERS: u64 = 3;
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(100);

fn run_benchmark(name: &str, throughput: Option<Throughput>, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warmup: also calibrates how many iterations fit in a sample window.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: WARMUP_ITERS,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / WARMUP_ITERS as f64;
    let iters = if per_iter > 0.0 {
        (TARGET_SAMPLE_TIME.as_secs_f64() / per_iter).clamp(1.0, 1e7) as u64
    } else {
        1000
    };

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let mut line = format!("bench {name:<50} {median:>12.1} ns/iter");
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            let rate = n as f64 / (median * 1e-9);
            line += &format!("  ({rate:>12.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            let rate = n as f64 / (median * 1e-9) / (1024.0 * 1024.0);
            line += &format!("  ({rate:>9.1} MiB/s)");
        }
        _ => {}
    }
    println!("{line}");
}

/// A named group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declares per-iteration workload size for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(2, 100);
        self
    }

    /// Runs a benchmark under `group_name/id`.
    pub fn bench_function<I: Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.throughput, self.samples, &mut f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.throughput, self.samples, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, None, DEFAULT_SAMPLES, &mut f);
        self
    }
}

/// Bundles benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(4)).sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter_with_setup(|| vec![n; 8], |v| v.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
