//! The network twin of `kv_shell`: the same interactive commands, but
//! spoken over calc-server's wire protocol instead of in-process calls —
//! every write is acknowledged only after its group-commit batch has been
//! fsynced on the server.
//!
//! ```sh
//! # Against an embedded server on an ephemeral port (default):
//! cargo run --release --example kv_client
//!
//! # Against a running `calc-server --dir ... --addr 127.0.0.1:4100`:
//! KV_ADDR=127.0.0.1:4100 cargo run --release --example kv_client
//! ```
//!
//! Commands: `put K V` · `get K` · `del K` · `cas K EXPECTED NEW` ·
//! `scan` · `checkpoint` · `health` · `stats` · `help` · `quit`.
//! Keys are arbitrary words (hashed to the engine's u64 keyspace); values
//! are the rest of the line. `crash`/`recover` from the shell have no
//! wire equivalent — the server's kill-9 smoke covers that story: SIGKILL
//! the server process and restart it over the same `--dir`.
//!
//! `scan` only covers names this shell session has touched: the wire
//! keyspace is hashed u64s with no enumeration verb, so a fresh
//! connection scans empty until it puts/gets keys — the data is still
//! there (`get` any name to see it), the shell just can't list what it
//! has never named.

use std::io::{BufRead, Write};
use std::sync::Arc;

use calc_server::{key_of, Client, KvError, Server};

/// Values carry their name so `scan` can print names back — same framing
/// as `kv_shell`, but now it crosses the wire.
fn encode_named(name: &str, value: &str) -> Vec<u8> {
    let mut v = Vec::with_capacity(1 + name.len() + value.len());
    v.push(name.len() as u8);
    v.extend_from_slice(name.as_bytes());
    v.extend_from_slice(value.as_bytes());
    v
}

fn decode_named(bytes: &[u8]) -> (String, String) {
    let n = bytes[0] as usize;
    (
        String::from_utf8_lossy(&bytes[1..1 + n]).into_owned(),
        String::from_utf8_lossy(&bytes[1 + n..]).into_owned(),
    )
}

fn main() {
    // KV_ADDR points at a live server; otherwise embed one over a temp
    // dir so the example is self-contained.
    let (addr, embedded) = match std::env::var("KV_ADDR") {
        Ok(addr) => (addr, None),
        Err(_) => {
            let dir = std::env::temp_dir().join(format!("calc-kv-client-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let db = calc_server::open_or_recover(&dir, |_| {}).expect("open embedded engine");
            let server = Server::start(Arc::new(db), "127.0.0.1:0").expect("bind embedded server");
            (server.local_addr().to_string(), Some((server, dir)))
        }
    };
    let mut client = Client::connect(&*addr).expect("connect to calc-server");
    let mut names: std::collections::BTreeSet<String> = Default::default();
    println!(
        "calc-server shell @ {addr}{}. `help` for commands.",
        if embedded.is_some() { " (embedded)" } else { "" }
    );

    let stdin = std::io::stdin();
    loop {
        print!("> ");
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let mut parts = line.trim().splitn(3, ' ');
        let cmd = parts.next().unwrap_or("");
        match cmd {
            "put" => {
                let (Some(k), Some(v)) = (parts.next(), parts.next()) else {
                    println!("usage: put KEY VALUE");
                    continue;
                };
                match client.put(key_of(k), &encode_named(k, v)) {
                    Ok(seq) => {
                        names.insert(k.to_string());
                        println!("ok {seq} (durable)");
                    }
                    Err(e) => println!("{e}"),
                }
            }
            "get" => {
                let Some(k) = parts.next() else {
                    println!("usage: get KEY");
                    continue;
                };
                match client.get(key_of(k)) {
                    Ok(Some(bytes)) => println!("{}", decode_named(&bytes).1),
                    Ok(None) => println!("(nil)"),
                    Err(e) => println!("{e}"),
                }
            }
            "del" => {
                let Some(k) = parts.next() else {
                    println!("usage: del KEY");
                    continue;
                };
                match client.del(key_of(k)) {
                    Ok(_) => {
                        names.remove(k);
                        println!("ok");
                    }
                    Err(e) => println!("{e}"),
                }
            }
            "cas" => {
                // `cas K - NEW` expects the key absent; `cas K EXP NEW`
                // swaps only if the current value is EXP.
                let (Some(k), Some(rest)) = (parts.next(), parts.next()) else {
                    println!("usage: cas KEY EXPECTED|- NEW");
                    continue;
                };
                let mut rv = rest.splitn(2, ' ');
                let (Some(exp), Some(new)) = (rv.next(), rv.next()) else {
                    println!("usage: cas KEY EXPECTED|- NEW");
                    continue;
                };
                let expected = (exp != "-").then(|| encode_named(k, exp));
                match client.cas(key_of(k), expected.as_deref(), &encode_named(k, new)) {
                    Ok(seq) => {
                        names.insert(k.to_string());
                        println!("ok {seq} (durable)");
                    }
                    Err(KvError::Aborted(r)) => println!("aborted: {r}"),
                    Err(e) => println!("{e}"),
                }
            }
            "scan" => {
                let keys: Vec<u64> = names.iter().map(|n| key_of(n)).collect();
                match client.mget(&keys) {
                    Ok(values) => {
                        for (name, v) in names.iter().zip(values) {
                            if let Some(bytes) = v {
                                println!("{name} = {}", decode_named(&bytes).1);
                            }
                        }
                    }
                    Err(e) => println!("{e}"),
                }
            }
            "checkpoint" => match client.checkpoint() {
                Ok(line) => println!("{line}"),
                Err(e) => println!("{e}"),
            },
            "health" => match client.health() {
                Ok(text) => print!("{text}"),
                Err(e) => println!("{e}"),
            },
            "stats" => match client.stats() {
                Ok(text) => print!("{text}"),
                Err(e) => println!("{e}"),
            },
            "help" => println!(
                "put K V · get K · del K · cas K EXPECTED|- NEW · scan · checkpoint · \
                 health · stats · quit"
            ),
            "quit" | "exit" => break,
            "" => {}
            other => println!("unknown command {other:?} — try `help`"),
        }
    }

    drop(client);
    if let Some((server, dir)) = embedded {
        // Graceful teardown: drain connections, flush the final
        // group-commit batch, stop the checkpoint daemon, then drop.
        let db = server.shutdown();
        if let Ok(db) = Arc::try_unwrap(db) {
            db.shutdown();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
