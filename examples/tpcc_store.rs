//! TPC-C on the embedded store: run the 50% NewOrder / 50% Payment mix
//! (§5.2 of the paper) under CALC and under Zig-Zag, and report the
//! checkpointing cost of each — on TPC-C the gap widens because NewOrder
//! writes many records per transaction, which Zig-Zag pays for on *every*
//! write via its second copy + bit-vector maintenance.
//!
//! ```sh
//! cargo run --release --example tpcc_store
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use calc_db::engine::{Database, EngineConfig, StrategyKind};
use calc_db::txn::proc::ProcRegistry;
use calc_db::workload::tpcc::{keys, tables, TpccConfig, TpccWorkload};

fn run(kind: StrategyKind, seconds: f64, with_checkpoint: bool) -> u64 {
    let config = TpccConfig {
        warehouses: 4,
        ..TpccConfig::paper()
    };
    let dir = std::env::temp_dir().join(format!(
        "calc-tpcc-example-{}-{}",
        kind.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut registry = ProcRegistry::new();
    TpccWorkload::register(&mut registry);
    let ec = EngineConfig::new(kind, config.capacity_hint(2_000_000), 140, dir);
    let db = Arc::new(Database::open(ec, registry).expect("open"));
    let wl = TpccWorkload::new(config.clone(), 42);
    wl.populate(&db);

    let stop = Arc::new(AtomicBool::new(false));
    let feeder = {
        let db = db.clone();
        let stop = stop.clone();
        let config = config.clone();
        std::thread::spawn(move || {
            let mut wl = TpccWorkload::new(config, 43);
            while !stop.load(Ordering::Relaxed) {
                let (proc, p) = wl.next_request();
                db.submit(proc, p);
            }
        })
    };
    if with_checkpoint {
        std::thread::sleep(Duration::from_secs_f64(seconds * 0.3));
        let stats = db.checkpoint_now().expect("checkpoint");
        println!(
            "  {}: checkpoint of {} records ({:.1} MB) in {:?}, quiesce {:?}",
            kind.name(),
            stats.records,
            stats.bytes as f64 / 1e6,
            stats.duration,
            stats.quiesce
        );
        std::thread::sleep(Duration::from_secs_f64(seconds * 0.7));
    } else {
        std::thread::sleep(Duration::from_secs_f64(seconds));
    }
    stop.store(true, Ordering::Relaxed);
    feeder.join().unwrap();
    db.metrics().committed()
}

fn main() {
    let seconds = 4.0;
    println!("TPC-C, 4 warehouses, 50/50 NewOrder/Payment, {seconds}s runs\n");

    println!("baseline (no checkpointing):");
    let baseline = run(StrategyKind::NoCheckpoint, seconds, false);
    println!("  None: {baseline} txns committed\n");

    println!("with one checkpoint mid-run:");
    for kind in [StrategyKind::Calc, StrategyKind::Zigzag] {
        let committed = run(kind, seconds, true);
        println!(
            "  {}: {} txns committed — {} lost vs baseline ({:.1}%)\n",
            kind.name(),
            committed,
            baseline.saturating_sub(committed),
            100.0 * baseline.saturating_sub(committed) as f64 / baseline.max(1) as f64
        );
    }

    // Show a slice of actual TPC-C state to prove this is a real schema.
    let config = TpccConfig::small();
    let dir = std::env::temp_dir().join(format!("calc-tpcc-example-peek-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut registry = ProcRegistry::new();
    TpccWorkload::register(&mut registry);
    let db = Database::open(
        EngineConfig::new(StrategyKind::Calc, config.capacity_hint(1000), 140, dir),
        registry,
    )
    .expect("open");
    let mut wl = TpccWorkload::new(config, 7);
    wl.populate(&db);
    for _ in 0..20 {
        let (proc, p) = wl.next_request();
        db.execute(proc, p);
    }
    let d = tables::District::decode(&db.get(keys::district(0, 0)).unwrap()).unwrap();
    println!(
        "peek: district(0,0) next_o_id={} ytd=${:.2}",
        d.next_o_id,
        d.ytd_cents as f64 / 100.0
    );
}
