//! Crash recovery with pCALC partial checkpoints and deterministic
//! command-log replay (§3 of the paper).
//!
//! The scenario: a pCALC-checkpointed store takes a base checkpoint, three
//! partial checkpoints, and keeps committing afterwards; then the process
//! "crashes" (we drop all in-memory state). Recovery (1) merges the base
//! full checkpoint with the partials, (2) replays the command log from the
//! last checkpoint's virtual-point-of-consistency watermark, and the
//! recovered state is bit-for-bit identical to the pre-crash state.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use std::sync::Arc;

use calc_db::core::calc::CalcStrategy;
use calc_db::core::strategy::CheckpointStrategy;
use calc_db::engine::{Database, EngineConfig, StrategyKind};
use calc_db::recovery;
use calc_db::storage::dual::StoreConfig;
use calc_db::txn::commitlog::CommitLog;
use calc_db::txn::proc::{
    params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps,
};
use calc_db::{CommitSeq, Key};

/// Append-counter procedure: `counter[key] += delta`.
struct Bump;
const BUMP: ProcId = ProcId(1);

impl Procedure for Bump {
    fn id(&self) -> ProcId {
        BUMP
    }
    fn name(&self) -> &'static str {
        "bump"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        let delta = r.u64()?;
        let current = ops
            .get(key)
            .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
            .unwrap_or(0);
        let next = (current + delta).to_le_bytes();
        if ops.get(key).is_some() {
            ops.put(key, &next);
        } else {
            ops.insert(key, &next);
        }
        Ok(())
    }
}

fn bump(key: u64, delta: u64) -> Arc<[u8]> {
    params::Writer::new().u64(key).u64(delta).finish()
}

fn registry() -> ProcRegistry {
    let mut r = ProcRegistry::new();
    r.register(Arc::new(Bump));
    r
}

fn main() {
    let dir = std::env::temp_dir().join(format!("calc-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Before the crash -------------------------------------------
    let mut config = EngineConfig::new(StrategyKind::PCalc, 10_000, 16, dir.clone());
    config.retain_command_log = true; // the durable command log
    config.merge_batch = Some(4);
    let db = Database::open(config, registry()).expect("open");

    for k in 0..1000u64 {
        db.load_initial(Key(k), &0u64.to_le_bytes()).expect("load");
    }
    let base = db.finalize_load(true).expect("base checkpoint").unwrap();
    println!("base full checkpoint: {} records", base.records);

    // Three rounds of activity, each followed by a partial checkpoint.
    for round in 1..=3u64 {
        for k in 0..100u64 {
            db.execute(BUMP, bump(k, round));
        }
        let stats = db.checkpoint_now().expect("partial checkpoint");
        println!(
            "partial checkpoint #{}: {} records ({} dirty keys captured, asynchronously)",
            stats.id, stats.records, stats.records
        );
    }
    // Post-checkpoint activity, present ONLY in the command log.
    for k in 0..50u64 {
        db.execute(BUMP, bump(k, 1000));
    }
    println!(
        "pre-crash: committed {} txns, key 0 = {}",
        db.metrics().committed(),
        u64::from_le_bytes(db.get(Key(0)).unwrap()[..8].try_into().unwrap())
    );
    let expected: Vec<_> = (0..1000u64).map(|k| db.get(Key(k))).collect();

    // Persist the command log the way a real deployment would (group
    // commit); here we snapshot it at crash time.
    let commands = db.commit_log().commits_after(CommitSeq::ZERO);
    println!("command log holds {} commit records", commands.len());

    // ---- CRASH -------------------------------------------------------
    drop(db); // all volatile state gone: stores, stable versions, bits
    println!("\n*** crash ***\n");

    // ---- Recovery ----------------------------------------------------
    let ckpt_dir = calc_db::core::manifest::CheckpointDir::open(
        &dir,
        Arc::new(calc_db::core::throttle::Throttle::unlimited()),
    )
    .expect("open checkpoint dir");
    let fresh = CalcStrategy::partial(
        StoreConfig::for_records(10_000, 16),
        Arc::new(CommitLog::new(false)),
    );
    let outcome =
        recovery::recover(&ckpt_dir, &fresh, &registry(), &commands).expect("recovery");
    println!(
        "recovered: loaded {} records from {} checkpoint file(s) in {:?}, \
         replayed {} txns in {:?} (from watermark {})",
        outcome.loaded_records,
        outcome.checkpoint_files,
        outcome.load_duration,
        outcome.replayed,
        outcome.replay_duration,
        outcome.watermark,
    );

    // Verify bit-for-bit equality with the pre-crash state.
    for (k, expect) in expected.iter().enumerate() {
        assert_eq!(
            fresh.get(Key(k as u64)).as_deref(),
            expect.as_deref(),
            "key {k} diverged"
        );
    }
    println!(
        "state verified: all 1000 keys identical to pre-crash (key 0 = {})",
        u64::from_le_bytes(
            calc_db::core::strategy::CheckpointStrategy::get(&fresh, Key(0)).unwrap()[..8]
                .try_into()
                .unwrap()
        )
    );
}
