//! An interactive shell over a CALC-checkpointed store — poke at the
//! system by hand: write data, take asynchronous checkpoints, crash, and
//! recover.
//!
//! ```sh
//! cargo run --release --example kv_shell
//! > put greeting hello
//! > get greeting
//! > checkpoint
//! > crash        # drops all in-memory state
//! > recover      # reloads checkpoints + replays the command log
//! > get greeting
//! ```
//!
//! Commands: `put K V` · `get K` · `del K` · `scan` · `checkpoint` ·
//! `merge` · `stats` · `crash` · `recover` · `help` · `quit`.
//! Keys are arbitrary words (hashed to the engine's u64 keyspace); values
//! are the rest of the line.

use std::io::{BufRead, Write};
use std::sync::Arc;

use calc_db::engine::{Database, EngineConfig, StrategyKind, TxnOutcome};
use calc_db::txn::proc::{
    params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps,
};
use calc_db::Key;

const PUT: ProcId = ProcId(1);
const DEL: ProcId = ProcId(2);

struct PutProc;
impl Procedure for PutProc {
    fn id(&self) -> ProcId {
        PUT
    }
    fn name(&self) -> &'static str {
        "put"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        let value = r.bytes()?;
        if ops.get(key).is_some() {
            ops.put(key, value);
        } else {
            ops.insert(key, value);
        }
        Ok(())
    }
}

struct DelProc;
impl Procedure for DelProc {
    fn id(&self) -> ProcId {
        DEL
    }
    fn name(&self) -> &'static str {
        "del"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        if !ops.delete(Key(r.u64()?)) {
            return Err(AbortReason::Logic("no such key".into()));
        }
        Ok(())
    }
}

/// Stable key hash (so `get greeting` finds what `put greeting` wrote).
/// Values store the original name alongside the payload so `scan` can
/// print names back.
fn key_of(name: &str) -> Key {
    let mut x: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        x ^= b as u64;
        x = x.wrapping_mul(0x0000_0100_0000_01B3);
    }
    Key(x & ((1 << 56) - 1))
}

fn encode_named(name: &str, value: &str) -> Vec<u8> {
    let mut v = Vec::with_capacity(2 + name.len() + value.len());
    v.push(name.len() as u8);
    v.extend_from_slice(name.as_bytes());
    v.extend_from_slice(value.as_bytes());
    v
}

fn decode_named(bytes: &[u8]) -> (String, String) {
    let n = bytes[0] as usize;
    (
        String::from_utf8_lossy(&bytes[1..1 + n]).into_owned(),
        String::from_utf8_lossy(&bytes[1 + n..]).into_owned(),
    )
}

fn registry() -> ProcRegistry {
    let mut r = ProcRegistry::new();
    r.register(Arc::new(PutProc));
    r.register(Arc::new(DelProc));
    r
}

fn open(dir: &std::path::Path) -> Database {
    let mut config = EngineConfig::new(StrategyKind::PCalc, 100_000, 64, dir.join("ckpts"));
    config.retain_command_log = true;
    config.merge_batch = Some(4);
    // ISSUE 6 knobs, drivable from the shell: `CKPT_CODEC=rle` compresses
    // checkpoint parts; the segmented on-disk command log (tiny segments,
    // so rotation is visible) is truncated behind `keep_checkpoints`.
    config.codec = calc_db::core::Codec::from_env().expect("CKPT_CODEC names a known codec");
    config.command_log_dir = Some(dir.join("cmdlog"));
    config.log_segment_bytes = Some(4 << 10);
    config.keep_checkpoints = Some(2);
    Database::open(config, registry()).expect("open database")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("calc-kv-shell-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut db = open(&dir);
    db.finalize_load(true).unwrap();
    // Keep a mirror of the command log across `crash` (in a real
    // deployment this is the on-disk command log).
    let mut saved_commands = Vec::new();
    let mut names: std::collections::BTreeSet<String> = Default::default();

    println!("calc-db shell (pCALC, merge every 4 partials). `help` for commands.");
    let stdin = std::io::stdin();
    loop {
        print!("> ");
        std::io::stdout().flush().unwrap();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let mut parts = line.trim().splitn(3, ' ');
        let cmd = parts.next().unwrap_or("");
        match cmd {
            "put" => {
                let (Some(k), Some(v)) = (parts.next(), parts.next()) else {
                    println!("usage: put KEY VALUE");
                    continue;
                };
                let p = params::Writer::new()
                    .u64(key_of(k).0)
                    .bytes(&encode_named(k, v))
                    .finish();
                match db.execute(PUT, p) {
                    TxnOutcome::Committed(seq) => {
                        names.insert(k.to_string());
                        println!("ok {seq}");
                    }
                    TxnOutcome::Aborted(e) => println!("aborted: {e}"),
                }
            }
            "get" => {
                let Some(k) = parts.next() else {
                    println!("usage: get KEY");
                    continue;
                };
                match db.get(key_of(k)) {
                    Some(bytes) => println!("{}", decode_named(&bytes).1),
                    None => println!("(nil)"),
                }
            }
            "del" => {
                let Some(k) = parts.next() else {
                    println!("usage: del KEY");
                    continue;
                };
                let p = params::Writer::new().u64(key_of(k).0).finish();
                match db.execute(DEL, p) {
                    TxnOutcome::Committed(_) => {
                        names.remove(k);
                        println!("ok");
                    }
                    TxnOutcome::Aborted(e) => println!("aborted: {e}"),
                }
            }
            "scan" => {
                for name in &names {
                    if let Some(bytes) = db.get(key_of(name)) {
                        println!("{name} = {}", decode_named(&bytes).1);
                    }
                }
            }
            "checkpoint" => match db.checkpoint_now() {
                Ok(s) => println!(
                    "{} checkpoint #{}: {} records, {} bytes, {:?} (quiesce {:?})",
                    s.kind, s.id, s.records, s.bytes, s.duration, s.quiesce
                ),
                Err(e) => println!("error: {e}"),
            },
            "merge" => match db.collapse_partials() {
                Ok(Some(m)) => println!(
                    "collapsed {} files → full #{} ({} records) in {:?}",
                    m.inputs, m.new_full_id, m.records, m.duration
                ),
                Ok(None) => println!("nothing to merge"),
                Err(e) => println!("error: {e}"),
            },
            "stats" => {
                let mem = db.strategy().memory();
                println!(
                    "records: {} · commits: {} · aborts: {} · mem: {} copies / {} bytes",
                    db.record_count(),
                    db.metrics().committed(),
                    db.metrics().aborted(),
                    mem.total_copies(),
                    mem.total_bytes()
                );
                for m in db.checkpoint_dir().scan().unwrap_or_default() {
                    println!(
                        "  {} #{} — {} records, watermark {}",
                        m.kind, m.id, m.records, m.watermark
                    );
                }
                let h = db.health();
                println!(
                    "  disk: last ckpt {} B ({} B raw) · chains pruned {} · log segments truncated {} ({} B)",
                    h.last_checkpoint_bytes(),
                    h.last_checkpoint_raw_bytes(),
                    h.checkpoints_pruned(),
                    h.log_segments_truncated(),
                    h.log_bytes_truncated()
                );
            }
            "crash" => {
                // Snapshot what the log still retains: commits truncated
                // behind `keep_checkpoints` are covered by durable
                // checkpoints, exactly as on a real disk.
                saved_commands = db
                    .commit_log()
                    .entries()
                    .into_iter()
                    .filter_map(|e| match e {
                        calc_db::txn::LogEntry::Commit(c) => Some(c),
                        _ => None,
                    })
                    .collect();
                drop(db);
                db = open(&dir); // empty store, same checkpoint dir
                println!(
                    "*** crashed; in-memory state dropped ({} commands survive on the log) ***",
                    saved_commands.len()
                );
            }
            "recover" => {
                let fresh = open(&dir);
                // Database::recover also resumes the commit-sequence and
                // checkpoint-id spaces, so new checkpoints never collide
                // with pre-crash files.
                match fresh.recover(&saved_commands) {
                    Ok(o) => {
                        println!(
                            "recovered {} records from {} file(s), replayed {} txns ({:?} + {:?})",
                            o.loaded_records,
                            o.checkpoint_files,
                            o.replayed,
                            o.load_duration,
                            o.replay_duration
                        );
                        db = fresh;
                    }
                    Err(e) => println!("recovery failed: {e}"),
                }
            }
            "help" => println!(
                "put K V · get K · del K · scan · checkpoint · merge · stats · crash · recover · quit"
            ),
            "quit" | "exit" => break,
            "" => {}
            other => println!("unknown command {other:?} — try `help`"),
        }
    }
}
