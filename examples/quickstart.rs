//! Quickstart: open a CALC-checkpointed database, run transactions, take
//! an asynchronous checkpoint, and inspect what it cost.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use calc_db::engine::{Database, EngineConfig, StrategyKind, TxnOutcome};
use calc_db::txn::proc::{
    params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps,
};
use calc_db::Key;

/// A deterministic stored procedure: transfers `amount` between two
/// account records, aborting on insufficient funds.
struct Transfer;

const TRANSFER: ProcId = ProcId(1);

impl Procedure for Transfer {
    fn id(&self) -> ProcId {
        TRANSFER
    }

    fn name(&self) -> &'static str {
        "transfer"
    }

    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        let from = Key(r.u64()?);
        let to = Key(r.u64()?);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![from, to],
        })
    }

    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let from = Key(r.u64()?);
        let to = Key(r.u64()?);
        let amount = r.u64()?;
        let balance = |v: Option<calc_db::Value>| {
            v.map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                .unwrap_or(0)
        };
        let from_balance = balance(ops.get(from));
        if from_balance < amount {
            return Err(AbortReason::Logic(format!(
                "insufficient funds: {from_balance} < {amount}"
            )));
        }
        let to_balance = balance(ops.get(to));
        ops.put(from, &(from_balance - amount).to_le_bytes());
        ops.put(to, &(to_balance + amount).to_le_bytes());
        Ok(())
    }
}

fn transfer_params(from: u64, to: u64, amount: u64) -> Arc<[u8]> {
    params::Writer::new().u64(from).u64(to).u64(amount).finish()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("calc-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut registry = ProcRegistry::new();
    registry.register(Arc::new(Transfer));
    let db = Database::open(
        EngineConfig::new(StrategyKind::Calc, 100_000, 16, dir),
        registry,
    )
    .expect("open database");

    // Load 10k accounts with 1000 credits each.
    for account in 0..10_000u64 {
        db.load_initial(Key(account), &1000u64.to_le_bytes())
            .expect("load");
    }
    println!("loaded {} accounts", db.record_count());

    // Run a burst of transfers while a checkpoint happens underneath.
    for i in 0..5_000u64 {
        db.submit(TRANSFER, transfer_params(i % 10_000, (i * 7 + 1) % 10_000, 10));
    }
    let stats = db.checkpoint_now().expect("checkpoint");
    println!(
        "checkpoint #{}: {} records, {:.1} MB, took {:?}, quiesce time: {:?} (CALC never quiesces)",
        stats.id,
        stats.records,
        stats.bytes as f64 / 1e6,
        stats.duration,
        stats.quiesce,
    );

    // A synchronous transaction that must abort.
    match db.execute(TRANSFER, transfer_params(1, 2, u64::MAX)) {
        TxnOutcome::Aborted(reason) => println!("as expected, aborted: {reason}"),
        TxnOutcome::Committed(_) => unreachable!("overdraft committed?!"),
    }

    // Total money is conserved no matter the interleaving.
    // (Drain in-flight work first.)
    while db.metrics().committed() + db.metrics().aborted() < 5_001 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let total: u64 = (0..10_000u64)
        .map(|a| u64::from_le_bytes(db.get(Key(a)).unwrap()[..8].try_into().unwrap()))
        .sum();
    assert_eq!(total, 10_000 * 1000);
    println!(
        "money conserved: {total} credits across 10k accounts; {} commits, {} aborts",
        db.metrics().committed(),
        db.metrics().aborted()
    );

    // The checkpoint on disk is transaction-consistent and validates.
    let metas = db.checkpoint_dir().scan().expect("scan");
    println!(
        "on disk: {} checkpoint file(s), newest watermark {}",
        metas.len(),
        metas.last().unwrap().watermark
    );
}
