//! A massively-multiplayer-game-style state server — the application
//! domain the Zig-Zag / Ping-Pong algorithms were designed for (Cao et
//! al., discussed in §1–2 of the paper) — demonstrating CALC's key
//! advantage: those algorithms need *physical* points of consistency
//! (moments with no in-flight actions), while CALC checkpoints at a
//! *virtual* point even while a long-running world event blocks the board.
//!
//! We run two servers side by side, one on Zig-Zag and one on CALC, start
//! a long "world boss raid" transaction, and trigger a checkpoint during
//! it. Zig-Zag must quiesce (stalling player actions until the raid
//! finishes); CALC's checkpoint proceeds with zero quiesce time.
//!
//! ```sh
//! cargo run --release --example game_server
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use calc_db::engine::{Database, EngineConfig, StrategyKind};
use calc_db::txn::proc::{
    params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps,
};
use calc_db::workload::spin;
use calc_db::Key;

const MOVE: ProcId = ProcId(1);
const RAID: ProcId = ProcId(2);
const PLAYERS: u64 = 10_000;
const BOSS_ZONE: u64 = PLAYERS; // keys PLAYERS..PLAYERS+100 = boss state

/// A player action: update one player's position/state record.
struct MoveProc;
impl Procedure for MoveProc {
    fn id(&self) -> ProcId {
        MOVE
    }
    fn name(&self) -> &'static str {
        "player-move"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let player = Key(r.u64()?);
        let x = r.u64()?;
        let y = r.u64()?;
        let mut state = [0u8; 16];
        state[..8].copy_from_slice(&x.to_le_bytes());
        state[8..].copy_from_slice(&y.to_le_bytes());
        ops.put(player, &state);
        Ok(())
    }
}

/// The raid: a long transaction updating the whole boss zone (damage
/// rolls for 100 entities — deterministic busywork standing in for the
/// game logic).
struct RaidProc;
impl Procedure for RaidProc {
    fn id(&self) -> ProcId {
        RAID
    }
    fn name(&self) -> &'static str {
        "world-boss-raid"
    }
    fn locks(&self, _p: &[u8]) -> Result<LockRequest, AbortReason> {
        Ok(LockRequest {
            reads: vec![],
            writes: (BOSS_ZONE..BOSS_ZONE + 100).map(Key).collect(),
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let iters = r.u64()?;
        let seed = r.u64()?;
        let rolls = spin::spin(seed, iters); // the long part
        for e in BOSS_ZONE..BOSS_ZONE + 100 {
            ops.put(Key(e), &rolls.wrapping_add(e).to_le_bytes());
        }
        Ok(())
    }
}

fn open(kind: StrategyKind) -> Database {
    let dir = std::env::temp_dir().join(format!(
        "calc-game-{}-{}",
        kind.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut registry = ProcRegistry::new();
    registry.register(Arc::new(MoveProc));
    registry.register(Arc::new(RaidProc));
    let mut config = EngineConfig::new(kind, PLAYERS as usize + 4096, 32, dir);
    config.workers = 4;
    let db = Database::open(config, registry).expect("open");
    for player in 0..PLAYERS {
        db.load_initial(Key(player), &[0u8; 16]).expect("load");
    }
    for e in BOSS_ZONE..BOSS_ZONE + 100 {
        db.load_initial(Key(e), &0u64.to_le_bytes()).expect("load");
    }
    db
}

fn demo(kind: StrategyKind) -> (Duration, Duration) {
    let db = open(kind);
    // Calibrate a raid that takes ~600 ms.
    let raid_iters = spin::calibrate(Duration::from_millis(600));
    let raid_params = params::Writer::new().u64(raid_iters).u64(7).finish();

    // Kick off the raid (fire and forget) plus a stream of player moves.
    db.submit(RAID, raid_params);
    for i in 0..2_000u64 {
        db.submit(
            MOVE,
            params::Writer::new()
                .u64(i % PLAYERS)
                .u64(i)
                .u64(i * 3)
                .finish(),
        );
    }
    // Give the raid a moment to grab its locks, then checkpoint mid-raid.
    std::thread::sleep(Duration::from_millis(100));
    let start = Instant::now();
    let stats = db.checkpoint_now().expect("checkpoint");
    (start.elapsed(), stats.quiesce)
}

fn main() {
    println!("world state: {PLAYERS} players + 100 boss entities; raid ≈ 600 ms\n");
    for kind in [StrategyKind::Zigzag, StrategyKind::Calc] {
        let (wall, quiesce) = demo(kind);
        println!(
            "{:>6}: checkpoint wall time {:>8.0?}, time players were LOCKED OUT: {:>8.0?}",
            kind.name(),
            wall,
            quiesce
        );
    }
    println!(
        "\nZig-Zag must wait for the raid to finish before its physical point of\n\
         consistency (players stall); CALC declares a virtual point in the commit\n\
         log and never blocks anyone."
    );
}
