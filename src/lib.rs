//! # calc-db — Low-Overhead Asynchronous Checkpointing
//!
//! A from-scratch Rust reproduction of **CALC** (*Checkpointing
//! Asynchronously using Logical Consistency*), the SIGMOD 2016 technique
//! for capturing transaction-consistent snapshots of a main-memory
//! database **without** quiescing it, without a database log, and with at
//! most two copies of any record (usually far fewer).
//!
//! The crate bundles the full evaluation system from the paper: a
//! memory-resident transactional key-value store with stored procedures,
//! deadlock-free strict two-phase locking, a worker-thread executor,
//! pluggable checkpointing strategies (CALC/pCALC plus the Naive, Fuzzy,
//! Interleaved Ping-Pong, and Zig-Zag baselines), deterministic
//! command-log recovery, and the paper's two benchmark workloads.
//!
//! ## Quickstart
//!
//! ```
//! use calc_db::engine::{Database, EngineConfig, StrategyKind, TxnOutcome};
//! use calc_db::txn::proc::{params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps};
//! use calc_db::Key;
//! use std::sync::Arc;
//!
//! // 1. Define a deterministic stored procedure.
//! struct Deposit;
//! impl Procedure for Deposit {
//!     fn id(&self) -> ProcId { ProcId(1) }
//!     fn name(&self) -> &'static str { "deposit" }
//!     fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
//!         let mut r = params::Reader::new(p);
//!         Ok(LockRequest { reads: vec![], writes: vec![Key(r.u64()?)] })
//!     }
//!     fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
//!         let mut r = params::Reader::new(p);
//!         let key = Key(r.u64()?);
//!         let amount = r.u64()?;
//!         let balance = ops.get(key)
//!             .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
//!             .unwrap_or(0);
//!         let new = (balance + amount).to_le_bytes();
//!         if ops.get(key).is_some() { ops.put(key, &new); } else { ops.insert(key, &new); }
//!         Ok(())
//!     }
//! }
//!
//! // 2. Open a database running the CALC checkpointer.
//! let dir = std::env::temp_dir().join(format!("calc-doc-{}", std::process::id()));
//! let mut registry = ProcRegistry::new();
//! registry.register(Arc::new(Deposit));
//! let db = Database::open(EngineConfig::new(StrategyKind::Calc, 1024, 16, dir), registry).unwrap();
//!
//! // 3. Execute transactions.
//! let p = params::Writer::new().u64(7).u64(100).finish();
//! assert!(matches!(db.execute(ProcId(1), p), TxnOutcome::Committed(_)));
//!
//! // 4. Take an asynchronous, transaction-consistent checkpoint — no
//! //    quiesce, no log.
//! let stats = db.checkpoint_now().unwrap();
//! assert_eq!(stats.quiesce.as_nanos(), 0); // CALC never stalls the system
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`core`] | CALC/pCALC, phase controller, checkpoint files, manifest, merger |
//! | [`baselines`] | Naive, Fuzzy, IPP, Zig-Zag (+ partial variants) |
//! | [`engine`] | `Database`, executor, admission gate, metrics |
//! | [`storage`] | dual-version / triple-copy / zig-zag stores, dirty trackers |
//! | [`txn`] | lock manager, commit/command log, procedures |
//! | [`recovery`] | checkpoint load + deterministic replay, durable command log |
//! | [`workload`] | the paper's microbenchmark and TPC-C |
//! | [`common`] | bit vectors (polarity swap), bloom filter, CRC-32, histograms |

pub use calc_baselines as baselines;
pub use calc_common as common;
pub use calc_core as core;
pub use calc_engine as engine;
pub use calc_recovery as recovery;
pub use calc_storage as storage;
pub use calc_txn as txn;
pub use calc_workload as workload;

pub use calc_common::types::{CommitSeq, Key, TxnId, Value};
pub use calc_core::strategy::CheckpointStrategy;
pub use calc_engine::{Database, EngineConfig, StrategyKind, TxnOutcome};
