//! Failure-injection tests: corrupting and tearing on-disk artifacts at
//! adversarial points, then verifying recovery degrades exactly as the
//! paper's durability argument says it should (fall back to the previous
//! checkpoint + replay; never load torn data).

use std::sync::Arc;

use calc_db::core::calc::CalcStrategy;
use calc_db::core::strategy::CheckpointStrategy;
use calc_db::engine::{Database, EngineConfig, StrategyKind};
use calc_db::recovery;
use calc_db::storage::dual::StoreConfig;
use calc_db::txn::commitlog::CommitLog;
use calc_db::txn::proc::{
    params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps,
};
use calc_db::{CommitSeq, Key};

struct SetProc;
const SET: ProcId = ProcId(1);

impl Procedure for SetProc {
    fn id(&self) -> ProcId {
        SET
    }
    fn name(&self) -> &'static str {
        "set"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        let v = r.u64()?.to_le_bytes();
        if ops.get(key).is_some() {
            ops.put(key, &v);
        } else {
            ops.insert(key, &v);
        }
        Ok(())
    }
}

fn set(k: u64, v: u64) -> Arc<[u8]> {
    params::Writer::new().u64(k).u64(v).finish()
}

fn registry() -> ProcRegistry {
    let mut r = ProcRegistry::new();
    r.register(Arc::new(SetProc));
    r
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "calc-fault-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn fresh_calc() -> CalcStrategy {
    CalcStrategy::full(
        StoreConfig::for_records(2048, 16),
        Arc::new(CommitLog::new(false)),
    )
}

/// Corrupting the newest checkpoint makes recovery fall back to the
/// previous one — and command-log replay from the OLDER watermark still
/// reconstructs the exact final state.
#[test]
fn corrupted_newest_checkpoint_falls_back_and_replays() {
    let dir = tmp_dir("fallback");
    let mut config = EngineConfig::new(StrategyKind::Calc, 2048, 16, dir);
    config.retain_command_log = true;
    let db = Database::open(config, registry()).unwrap();
    for k in 0..100u64 {
        db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
    }
    for k in 0..100u64 {
        db.execute(SET, set(k, 1));
    }
    let first = db.checkpoint_now().unwrap();
    for k in 0..50u64 {
        db.execute(SET, set(k, 2));
    }
    let second = db.checkpoint_now().unwrap();
    for k in 0..10u64 {
        db.execute(SET, set(k, 3));
    }

    // Corrupt the newest checkpoint file (bit flip mid-body).
    let metas = db.checkpoint_dir().scan().unwrap();
    assert_eq!(metas.len(), 2);
    let newest = metas.iter().find(|m| m.id == second.id).unwrap();
    let mut bytes = std::fs::read(&newest.path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest.path, &bytes).unwrap();

    // The corrupted file is invisible to the recovery chain…
    let (full, _) = db.checkpoint_dir().recovery_chain().unwrap().unwrap();
    assert_eq!(full.id, first.id, "fell back to the older checkpoint");

    // …and replay from the older watermark reproduces the exact state.
    let recovered = fresh_calc();
    let commands = db.commit_log().commits_after(CommitSeq::ZERO);
    let outcome =
        recovery::recover(db.checkpoint_dir(), &recovered, &registry(), &commands).unwrap();
    assert_eq!(outcome.watermark, first.watermark);
    assert_eq!(outcome.replayed, 60, "everything after the first checkpoint");
    for k in 0..100u64 {
        assert_eq!(recovered.get(Key(k)), db.get(Key(k)), "key {k}");
    }
}

/// A stray temp file (crash mid-capture before rename) is invisible.
#[test]
fn crash_mid_capture_leaves_only_previous_checkpoint() {
    let dir = tmp_dir("midcapture");
    let db = Database::open(
        EngineConfig::new(StrategyKind::Calc, 1024, 16, dir.clone()),
        registry(),
    )
    .unwrap();
    for k in 0..20u64 {
        db.load_initial(Key(k), &7u64.to_le_bytes()).unwrap();
    }
    db.checkpoint_now().unwrap();
    // Simulate a capture that died before publish: a half-written temp
    // file with a plausible name.
    std::fs::write(
        db.checkpoint_dir().path().join(".tmp-ckpt-0000000009-full.calc"),
        b"CALCCKPT-half-written-garbage",
    )
    .unwrap();
    // And one that died after creating a final-named file but before the
    // footer was durable.
    std::fs::write(
        db.checkpoint_dir().path().join("ckpt-0000000008-full.calc"),
        b"CALCCKPT-no-footer",
    )
    .unwrap();

    let metas = db.checkpoint_dir().scan().unwrap();
    assert_eq!(metas.len(), 1, "only the valid checkpoint is live");
    let recovered = fresh_calc();
    let outcome = recovery::recover_checkpoint_only(db.checkpoint_dir(), &recovered).unwrap();
    assert_eq!(outcome.loaded_records, 20);
}

/// A torn command-log tail loses only the unflushed suffix: recovery
/// replays the surviving prefix and lands at that prefix's state.
#[test]
fn torn_command_log_replays_surviving_prefix() {
    let dir = tmp_dir("tornlog");
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("commands.log");
    let mut config = EngineConfig::new(StrategyKind::Calc, 1024, 16, dir.clone());
    config.retain_command_log = true;
    let db = Database::open(config, registry()).unwrap();
    for k in 0..10u64 {
        db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
    }
    let ckpt = db.checkpoint_now().unwrap();
    for i in 0..20u64 {
        db.execute(SET, set(i % 10, 100 + i));
    }
    // Persist the command log, then tear the tail.
    {
        let mut w = recovery::CommandLogWriter::create(&log_path).unwrap();
        for rec in db.commit_log().commits_after(CommitSeq::ZERO) {
            w.append(&rec).unwrap();
        }
        w.sync().unwrap();
    }
    let bytes = std::fs::read(&log_path).unwrap();
    std::fs::write(&log_path, &bytes[..bytes.len() - 13]).unwrap();

    let commands = recovery::CommandLogReader::open(&log_path)
        .unwrap()
        .read_all()
        .unwrap();
    assert_eq!(commands.len(), 19, "exactly the torn record lost");

    let recovered = fresh_calc();
    let outcome =
        recovery::recover(db.checkpoint_dir(), &recovered, &registry(), &commands).unwrap();
    assert_eq!(outcome.watermark, ckpt.watermark);
    assert_eq!(outcome.replayed, 19);
    // The recovered state equals a prefix-replay: every key except the
    // last-written one matches the live db; that one holds its
    // second-to-last value.
    let mut diffs = 0;
    for k in 0..10u64 {
        if recovered.get(Key(k)) != db.get(Key(k)) {
            diffs += 1;
        }
    }
    assert_eq!(diffs, 1, "exactly the torn commit's effect is missing");
}

/// Double failure: corrupt newest checkpoint AND torn log — recovery
/// still produces a consistent prefix state (no torn data ever loaded).
#[test]
fn double_failure_still_yields_consistent_prefix() {
    let dir = tmp_dir("double");
    let mut config = EngineConfig::new(StrategyKind::Calc, 1024, 16, dir);
    config.retain_command_log = true;
    let db = Database::open(config, registry()).unwrap();
    for k in 0..30u64 {
        db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
    }
    for k in 0..30u64 {
        db.execute(SET, set(k, 1));
    }
    let first = db.checkpoint_now().unwrap();
    for k in 0..30u64 {
        db.execute(SET, set(k, 2));
    }
    let second = db.checkpoint_now().unwrap();

    // Corrupt the second checkpoint.
    let metas = db.checkpoint_dir().scan().unwrap();
    let newest = metas.iter().find(|m| m.id == second.id).unwrap();
    let mut bytes = std::fs::read(&newest.path).unwrap();
    let n = bytes.len();
    bytes[n - 30] ^= 0x01;
    std::fs::write(&newest.path, &bytes).unwrap();

    // Drop the last 10 commits from the log.
    let mut commands = db.commit_log().commits_after(CommitSeq::ZERO);
    commands.truncate(commands.len() - 10);

    let recovered = fresh_calc();
    let outcome =
        recovery::recover(db.checkpoint_dir(), &recovered, &registry(), &commands).unwrap();
    assert_eq!(outcome.watermark, first.watermark);
    // Keys 0..20 got their second write replayed; 20..30 retain the
    // first-checkpoint value. Everything is from a consistent prefix.
    for k in 0..20u64 {
        assert_eq!(recovered.get(Key(k)).unwrap(), 2u64.to_le_bytes().into());
    }
    for k in 20..30u64 {
        assert_eq!(recovered.get(Key(k)).unwrap(), 1u64.to_le_bytes().into());
    }
}
