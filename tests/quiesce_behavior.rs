//! The paper's headline behavioural claim, as a deterministic test:
//! algorithms needing a *physical* point of consistency must quiesce —
//! and with a long-running transaction in flight, the quiesce lasts until
//! that transaction finishes — while CALC's *virtual* point of
//! consistency never stalls anyone (§2.2, Figure 2(b)).

use std::sync::Arc;
use std::time::Duration;

use calc_db::engine::{Database, EngineConfig, StrategyKind};
use calc_db::txn::proc::{
    params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps,
};
use calc_db::workload::spin;
use calc_db::Key;

const QUICK: ProcId = ProcId(1);
const LONG: ProcId = ProcId(2);

struct QuickProc;
impl Procedure for QuickProc {
    fn id(&self) -> ProcId {
        QUICK
    }
    fn name(&self) -> &'static str {
        "quick"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        ops.put(key, &r.u64()?.to_le_bytes());
        Ok(())
    }
}

struct LongProc;
impl Procedure for LongProc {
    fn id(&self) -> ProcId {
        LONG
    }
    fn name(&self) -> &'static str {
        "long"
    }
    fn locks(&self, _p: &[u8]) -> Result<LockRequest, AbortReason> {
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(999)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let iters = r.u64()?;
        let folded = spin::spin(1, iters);
        ops.put(Key(999), &folded.to_le_bytes());
        Ok(())
    }
}

fn open(kind: StrategyKind, name: &str) -> Database {
    let dir = std::env::temp_dir().join(format!(
        "calc-quiesce-{}-{}-{name}",
        std::process::id(),
        kind.name()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut registry = ProcRegistry::new();
    registry.register(Arc::new(QuickProc));
    registry.register(Arc::new(LongProc));
    let mut config = EngineConfig::new(kind, 4096, 16, dir);
    config.workers = 2;
    let db = Database::open(config, registry).unwrap();
    for k in 0..1000u64 {
        db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
    }
    db
}

fn checkpoint_during_long_txn(kind: StrategyKind) -> Duration {
    let db = open(kind, "stall");
    // A transaction that busy-works for ~400 ms while holding its lock.
    let iters = spin::calibrate(Duration::from_millis(400));
    db.submit(LONG, params::Writer::new().u64(iters).finish());
    // Let it grab its lock and start working.
    std::thread::sleep(Duration::from_millis(60));
    let stats = db.checkpoint_now().unwrap();
    stats.quiesce
}

#[test]
fn physical_point_algorithms_stall_behind_long_transactions() {
    for kind in [StrategyKind::Zigzag, StrategyKind::Ipp, StrategyKind::Naive] {
        let quiesce = checkpoint_during_long_txn(kind);
        assert!(
            quiesce > Duration::from_millis(20),
            "{}: expected a visible stall waiting for the long txn, got {quiesce:?}",
            kind.name()
        );
    }
}

#[test]
fn calc_never_quiesces_even_with_long_transactions() {
    let quiesce = checkpoint_during_long_txn(StrategyKind::Calc);
    assert_eq!(
        quiesce,
        Duration::ZERO,
        "CALC must not stall the system for a physical point of consistency"
    );
    // MVCC (full multi-versioning) shares this property — the §2.1 claim.
    let quiesce = checkpoint_during_long_txn(StrategyKind::Mvcc);
    assert_eq!(quiesce, Duration::ZERO);
}

#[test]
fn calc_virtual_point_lands_after_rest_started_straggler() {
    // A long transaction that started in the REST phase must complete
    // before the PREPARE→RESOLVE transition (the prepare drain waits for
    // it — delaying the *checkpoint*, never the *system*). Its write is
    // therefore committed before the virtual point of consistency and
    // must appear in the checkpoint; quiesce time stays zero throughout.
    let db = open(StrategyKind::Calc, "straggler");
    let iters = spin::calibrate(Duration::from_millis(300));
    db.submit(LONG, params::Writer::new().u64(iters).finish());
    std::thread::sleep(Duration::from_millis(50));
    let stats = db.checkpoint_now().unwrap();
    assert_eq!(stats.quiesce, Duration::ZERO);

    let expected = spin::spin(1, iters); // the long txn's deterministic write
    let metas = db.checkpoint_dir().scan().unwrap();
    let entries = metas[0].read_all().unwrap();
    let captured = entries
        .iter()
        .find_map(|e| match e {
            calc_db::core::file::RecordEntry::Value(k, v) if *k == Key(999) => Some(v.clone()),
            _ => None,
        })
        .expect("key 999 in checkpoint");
    assert_eq!(
        &captured[..],
        &expected.to_le_bytes(),
        "the straggler committed before the virtual point; its write must be captured"
    );
}
