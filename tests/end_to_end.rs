//! Cross-crate integration tests: the full stack (engine → strategy →
//! storage → checkpoint files → recovery) exercised through the public
//! `calc_db` facade.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use calc_db::core::calc::CalcStrategy;
use calc_db::core::strategy::CheckpointStrategy;
use calc_db::engine::{Database, EngineConfig, StrategyKind, TxnOutcome};
use calc_db::recovery;
use calc_db::storage::dual::StoreConfig;
use calc_db::txn::commitlog::CommitLog;
use calc_db::txn::proc::{
    params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps,
};
use calc_db::workload::tpcc::{keys, tables, TpccConfig, TpccWorkload};
use calc_db::{CommitSeq, Key};

/// `counter[key] += delta`, insert-on-absent.
struct Bump;
const BUMP: ProcId = ProcId(1);

impl Procedure for Bump {
    fn id(&self) -> ProcId {
        BUMP
    }
    fn name(&self) -> &'static str {
        "bump"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        let delta = r.u64()?;
        let cur = ops
            .get(key)
            .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
            .unwrap_or(0);
        let next = (cur + delta).to_le_bytes();
        if ops.get(key).is_some() {
            ops.put(key, &next);
        } else {
            ops.insert(key, &next);
        }
        Ok(())
    }
}

fn bump(key: u64, delta: u64) -> Arc<[u8]> {
    params::Writer::new().u64(key).u64(delta).finish()
}

fn registry() -> ProcRegistry {
    let mut r = ProcRegistry::new();
    r.register(Arc::new(Bump));
    r
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "calc-e2e-{}-{}-{name}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn full_stack_checkpoint_and_recovery_for_every_tc_strategy() {
    for kind in StrategyKind::ALL_CHECKPOINTING {
        if matches!(kind, StrategyKind::Fuzzy | StrategyKind::PFuzzy) {
            continue; // not transaction-consistent; covered below
        }
        let dir = tmp_dir(&format!("fullstack-{}", kind.name()));
        let mut config = EngineConfig::new(kind, 8192, 16, dir.clone());
        config.retain_command_log = true;
        config.workers = 4;
        let db = Database::open(config, registry()).unwrap();
        for k in 0..500u64 {
            db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
        }
        db.finalize_load(kind.is_partial()).unwrap();

        // Concurrent load while checkpointing.
        let stop = Arc::new(AtomicBool::new(false));
        let dbc = Arc::new(db);
        let feeder = {
            let db = dbc.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    db.submit(BUMP, bump(i % 500, 1));
                    i += 1;
                }
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        dbc.checkpoint_now()
            .unwrap_or_else(|e| panic!("{}: checkpoint failed: {e}", kind.name()));
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::Relaxed);
        feeder.join().unwrap();
        // Let queued work drain via a sync marker per key region.
        dbc.execute(BUMP, bump(0, 0));
        while dbc.metrics().committed() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Wait for full drain: submit count unknown, so wait until the
        // commit counter stabilizes.
        let mut last = 0;
        loop {
            std::thread::sleep(Duration::from_millis(20));
            let now = dbc.metrics().committed();
            if now == last {
                break;
            }
            last = now;
        }

        // Recover into a fresh CALC store (checkpoint files are
        // strategy-agnostic) and replay the command log.
        let fresh = CalcStrategy::full(
            StoreConfig::for_records(8192, 16),
            Arc::new(CommitLog::new(false)),
        );
        let commands = dbc.commit_log().commits_after(CommitSeq::ZERO);
        let outcome = recovery::recover(dbc.checkpoint_dir(), &fresh, &registry(), &commands)
            .unwrap_or_else(|e| panic!("{}: recovery failed: {e}", kind.name()));
        assert!(outcome.loaded_records > 0, "{}", kind.name());
        for k in 0..500u64 {
            assert_eq!(
                fresh.get(Key(k)),
                dbc.get(Key(k)),
                "{}: key {k} diverged after recovery",
                kind.name()
            );
        }
    }
}

#[test]
fn fuzzy_checkpoints_are_refused_by_recovery() {
    let dir = tmp_dir("fuzzy-refused");
    let db = Database::open(
        EngineConfig::new(StrategyKind::PFuzzy, 1024, 16, dir),
        registry(),
    )
    .unwrap();
    for k in 0..10u64 {
        db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
    }
    db.finalize_load(true).unwrap();
    db.execute(BUMP, bump(1, 5));
    db.checkpoint_now().unwrap();

    let fresh = calc_db::baselines::FuzzyStrategy::partial(
        StoreConfig::for_records(1024, 16),
        Arc::new(CommitLog::new(false)),
    );
    let err = recovery::recover(db.checkpoint_dir(), &fresh, &registry(), &[]).unwrap_err();
    assert!(matches!(
        err,
        recovery::RecoveryError::NotTransactionConsistent(_)
    ));
}

#[test]
fn durable_command_log_file_survives_crash_and_replays() {
    let dir = tmp_dir("durable-log");
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("commands.log");

    let mut config = EngineConfig::new(StrategyKind::Calc, 1024, 16, dir.clone());
    config.retain_command_log = true;
    let db = Database::open(config, registry()).unwrap();
    for k in 0..50u64 {
        db.load_initial(Key(k), &0u64.to_le_bytes()).unwrap();
    }
    let ckpt = {
        for k in 0..50u64 {
            db.execute(BUMP, bump(k, k + 1));
        }
        let stats = db.checkpoint_now().unwrap();
        for k in 0..10u64 {
            db.execute(BUMP, bump(k, 100));
        }
        stats
    };
    // Group-commit the command log to disk, then "crash".
    {
        let mut w = recovery::CommandLogWriter::create(&log_path).unwrap();
        for rec in db.commit_log().commits_after(CommitSeq::ZERO) {
            w.append(&rec).unwrap();
        }
        w.sync().unwrap();
    }
    let expected: Vec<_> = (0..50u64).map(|k| db.get(Key(k))).collect();
    let ckpt_dir_path = db.checkpoint_dir().path().to_path_buf();
    drop(db);

    // Recover purely from disk artifacts: checkpoint files + command log.
    let commands = recovery::CommandLogReader::open(&log_path)
        .unwrap()
        .read_all()
        .unwrap();
    assert_eq!(commands.len(), 60);
    let ckpt_dir = calc_db::core::manifest::CheckpointDir::open(
        &ckpt_dir_path,
        Arc::new(calc_db::core::throttle::Throttle::unlimited()),
    )
    .unwrap();
    let fresh = CalcStrategy::full(
        StoreConfig::for_records(1024, 16),
        Arc::new(CommitLog::new(false)),
    );
    let outcome = recovery::recover(&ckpt_dir, &fresh, &registry(), &commands).unwrap();
    assert_eq!(outcome.watermark, ckpt.watermark);
    assert_eq!(outcome.replayed, 10);
    for (k, exp) in expected.iter().enumerate() {
        assert_eq!(fresh.get(Key(k as u64)), *exp, "key {k}");
    }
}

#[test]
fn tpcc_money_conserved_across_checkpoint_and_recovery() {
    let config = TpccConfig::small();
    let dir = tmp_dir("tpcc-recover");
    let mut registry = ProcRegistry::new();
    TpccWorkload::register(&mut registry);
    let mut ec = EngineConfig::new(StrategyKind::PCalc, config.capacity_hint(5000), 140, dir);
    ec.retain_command_log = true;
    ec.workers = 4;
    let db = Database::open(ec, registry).unwrap();
    let mut wl = TpccWorkload::new(config.clone(), 9);
    wl.populate(&db);
    db.finalize_load(true).unwrap();

    let mut committed = 0;
    for i in 0..300 {
        let (proc, p) = wl.next_request();
        if matches!(db.execute(proc, p), TxnOutcome::Committed(_)) {
            committed += 1;
        }
        if i == 150 {
            db.checkpoint_now().unwrap();
        }
    }
    assert!(committed > 250);
    db.checkpoint_now().unwrap();

    // Recover and verify warehouse YTD totals match exactly.
    let mut registry2 = ProcRegistry::new();
    TpccWorkload::register(&mut registry2);
    let fresh = CalcStrategy::partial(
        StoreConfig::for_records(config.capacity_hint(5000), 140),
        Arc::new(CommitLog::new(false)),
    );
    let commands = db.commit_log().commits_after(CommitSeq::ZERO);
    recovery::recover(db.checkpoint_dir(), &fresh, &registry2, &commands).unwrap();
    for w in 0..config.warehouses {
        let live = tables::Warehouse::decode(&db.get(keys::warehouse(w)).unwrap()).unwrap();
        let rec = tables::Warehouse::decode(&fresh.get(keys::warehouse(w)).unwrap()).unwrap();
        assert_eq!(live.ytd_cents, rec.ytd_cents, "warehouse {w} YTD diverged");
    }
    assert_eq!(db.record_count(), fresh.record_count());
}

#[test]
fn checkpoint_files_are_portable_across_strategies() {
    // A checkpoint taken under Zig-Zag restores into a CALC store and
    // vice versa — the file format is strategy-agnostic.
    let dir = tmp_dir("portable");
    let db = Database::open(
        EngineConfig::new(StrategyKind::Zigzag, 1024, 16, dir),
        registry(),
    )
    .unwrap();
    for k in 0..100u64 {
        db.load_initial(Key(k), &k.to_le_bytes()).unwrap();
    }
    db.execute(BUMP, bump(5, 37));
    db.checkpoint_now().unwrap();

    let calc = CalcStrategy::full(
        StoreConfig::for_records(1024, 16),
        Arc::new(CommitLog::new(false)),
    );
    let outcome = recovery::recover_checkpoint_only(db.checkpoint_dir(), &calc).unwrap();
    assert_eq!(outcome.loaded_records, 100);
    assert_eq!(
        calc.get(Key(5)).unwrap(),
        (5u64 + 37).to_le_bytes().into()
    );
}
