//! Randomized consistency tests over the full stack.
//!
//! Strategy: drive a single-worker `Database` with seeded op sequences
//! (bump/insert/delete/checkpoint markers), mirror them into a model
//! `BTreeMap`, and assert (a) live state equals the model at every
//! point, (b) every checkpoint equals the model state captured at its
//! trigger, and (c) checkpoint-only recovery reproduces that state. A
//! single worker makes the commit order equal the submission order, so
//! the model is exact.
//!
//! Cases are generated from `calc_common::rng::SplitMix` (the offline
//! build has no proptest); failures print the responsible seed.

use std::collections::BTreeMap;
use std::sync::Arc;

use calc_db::common::rng::SplitMix;
use calc_db::core::calc::CalcStrategy;
use calc_db::core::strategy::CheckpointStrategy;
use calc_db::engine::{Database, EngineConfig, StrategyKind, TxnOutcome};
use calc_db::recovery;
use calc_db::storage::dual::StoreConfig;
use calc_db::txn::commitlog::CommitLog;
use calc_db::txn::proc::{
    params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps,
};
use calc_db::Key;

const SET: ProcId = ProcId(1);
const DELETE: ProcId = ProcId(2);

struct SetProc;
impl Procedure for SetProc {
    fn id(&self) -> ProcId {
        SET
    }
    fn name(&self) -> &'static str {
        "set"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        let val = r.bytes()?;
        if ops.get(key).is_some() {
            ops.put(key, val);
        } else {
            ops.insert(key, val);
        }
        Ok(())
    }
}

struct DeleteProc;
impl Procedure for DeleteProc {
    fn id(&self) -> ProcId {
        DELETE
    }
    fn name(&self) -> &'static str {
        "delete"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        ops.delete(key);
        Ok(())
    }
}

#[derive(Clone, Debug)]
enum Op {
    Set(u64, Vec<u8>),
    Delete(u64),
    Checkpoint,
}

fn gen_ops(rng: &mut SplitMix, max_len: u64) -> Vec<Op> {
    let n = 1 + rng.next_below(max_len - 1) as usize;
    (0..n)
        .map(|_| match rng.next_below(9) {
            // 6:2:1 set/delete/checkpoint, matching the original weights.
            0..=5 => {
                let k = rng.next_below(24);
                let len = rng.next_below(40) as usize;
                let v = (0..len).map(|_| rng.next_u64() as u8).collect();
                Op::Set(k, v)
            }
            6 | 7 => Op::Delete(rng.next_below(24)),
            _ => Op::Checkpoint,
        })
        .collect()
}

fn registry() -> ProcRegistry {
    let mut r = ProcRegistry::new();
    r.register(Arc::new(SetProc));
    r.register(Arc::new(DeleteProc));
    r
}

fn run_scenario(kind: StrategyKind, ops: &[Op], case: &str) {
    let dir = std::env::temp_dir().join(format!(
        "calc-proptest-{}-{}-{case}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = EngineConfig::new(kind, 4096, 64, dir);
    config.workers = 1; // commit order == submission order → exact model
    let db = Database::open(config, registry()).unwrap();
    db.finalize_load(kind.is_partial()).unwrap();

    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut snapshots: Vec<BTreeMap<u64, Vec<u8>>> = Vec::new();

    for op in ops {
        match op {
            Op::Set(k, v) => {
                let p = params::Writer::new().u64(*k).bytes(v).finish();
                assert!(matches!(db.execute(SET, p), TxnOutcome::Committed(_)));
                model.insert(*k, v.clone());
            }
            Op::Delete(k) => {
                let p = params::Writer::new().u64(*k).finish();
                assert!(matches!(db.execute(DELETE, p), TxnOutcome::Committed(_)));
                model.remove(k);
            }
            Op::Checkpoint => {
                db.checkpoint_now().unwrap();
                snapshots.push(model.clone());
            }
        }
    }

    // (a) Live state equals the model.
    for (k, v) in &model {
        assert_eq!(
            db.get(Key(*k)).as_deref(),
            Some(v.as_slice()),
            "live state diverged at key {k} ({case})"
        );
    }
    assert_eq!(db.record_count(), model.len());

    // (b+c) Recovery of the newest chain equals the state at the last
    // checkpoint.
    if let Some(expected) = snapshots.last() {
        let fresh = CalcStrategy::full(
            StoreConfig::for_records(4096, 64),
            Arc::new(CommitLog::new(false)),
        );
        let outcome = recovery::recover_checkpoint_only(db.checkpoint_dir(), &fresh).unwrap();
        assert_eq!(
            outcome.loaded_records as usize,
            expected.len(),
            "recovered record count ({case})"
        );
        for (k, v) in expected {
            assert_eq!(
                fresh.get(Key(*k)).as_deref(),
                Some(v.as_slice()),
                "recovered state diverged at key {k} ({case})"
            );
        }
    }
}

const SEED_BASE: u64 = 0xc0de_ca1c_0000_0000;
const CASES: u64 = 24;

fn run_cases(kind: StrategyKind, max_len: u64, tag: &str, salt: u64) {
    for case in 0..CASES {
        let seed = SEED_BASE ^ (salt << 8) ^ case;
        let mut rng = SplitMix::new(seed);
        let ops = gen_ops(&mut rng, max_len);
        run_scenario(kind, &ops, &format!("{tag}-{seed:x}"));
    }
}

#[test]
fn calc_matches_model() {
    run_cases(StrategyKind::Calc, 60, "calc", 1);
}

#[test]
fn pcalc_matches_model() {
    run_cases(StrategyKind::PCalc, 60, "pcalc", 2);
}

#[test]
fn zigzag_matches_model() {
    run_cases(StrategyKind::Zigzag, 40, "zigzag", 3);
}

#[test]
fn pipp_matches_model() {
    run_cases(StrategyKind::PIpp, 40, "pipp", 4);
}

#[test]
fn pnaive_matches_model() {
    run_cases(StrategyKind::PNaive, 40, "pnaive", 5);
}
