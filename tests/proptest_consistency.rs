//! Property-based tests over the full stack.
//!
//! Strategy: drive a single-worker `Database` with arbitrary op sequences
//! (bump/insert/delete/checkpoint markers), mirror them into a model
//! `BTreeMap`, and assert (a) live state equals the model at every
//! point, (b) every checkpoint equals the model state captured at its
//! trigger, and (c) checkpoint-only recovery reproduces that state. A
//! single worker makes the commit order equal the submission order, so
//! the model is exact.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use calc_db::core::calc::CalcStrategy;
use calc_db::core::strategy::CheckpointStrategy;
use calc_db::engine::{Database, EngineConfig, StrategyKind, TxnOutcome};
use calc_db::recovery;
use calc_db::storage::dual::StoreConfig;
use calc_db::txn::commitlog::CommitLog;
use calc_db::txn::proc::{
    params, AbortReason, LockRequest, ProcId, ProcRegistry, Procedure, TxnOps,
};
use calc_db::Key;

const SET: ProcId = ProcId(1);
const DELETE: ProcId = ProcId(2);

struct SetProc;
impl Procedure for SetProc {
    fn id(&self) -> ProcId {
        SET
    }
    fn name(&self) -> &'static str {
        "set"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        let val = r.bytes()?;
        if ops.get(key).is_some() {
            ops.put(key, val);
        } else {
            ops.insert(key, val);
        }
        Ok(())
    }
}

struct DeleteProc;
impl Procedure for DeleteProc {
    fn id(&self) -> ProcId {
        DELETE
    }
    fn name(&self) -> &'static str {
        "delete"
    }
    fn locks(&self, p: &[u8]) -> Result<LockRequest, AbortReason> {
        let mut r = params::Reader::new(p);
        Ok(LockRequest {
            reads: vec![],
            writes: vec![Key(r.u64()?)],
        })
    }
    fn run(&self, p: &[u8], ops: &mut dyn TxnOps) -> Result<(), AbortReason> {
        let mut r = params::Reader::new(p);
        let key = Key(r.u64()?);
        ops.delete(key);
        Ok(())
    }
}

#[derive(Clone, Debug)]
enum Op {
    Set(u64, Vec<u8>),
    Delete(u64),
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u64..24, proptest::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(k, v)| Op::Set(k, v)),
        2 => (0u64..24).prop_map(Op::Delete),
        1 => Just(Op::Checkpoint),
    ]
}

fn registry() -> ProcRegistry {
    let mut r = ProcRegistry::new();
    r.register(Arc::new(SetProc));
    r.register(Arc::new(DeleteProc));
    r
}

fn run_scenario(kind: StrategyKind, ops: &[Op], case: &str) {
    let dir = std::env::temp_dir().join(format!(
        "calc-proptest-{}-{}-{case}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = EngineConfig::new(kind, 4096, 64, dir);
    config.workers = 1; // commit order == submission order → exact model
    let db = Database::open(config, registry()).unwrap();
    db.finalize_load(kind.is_partial()).unwrap();

    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut snapshots: Vec<BTreeMap<u64, Vec<u8>>> = Vec::new();

    for op in ops {
        match op {
            Op::Set(k, v) => {
                let p = params::Writer::new().u64(*k).bytes(v).finish();
                assert!(matches!(db.execute(SET, p), TxnOutcome::Committed(_)));
                model.insert(*k, v.clone());
            }
            Op::Delete(k) => {
                let p = params::Writer::new().u64(*k).finish();
                assert!(matches!(db.execute(DELETE, p), TxnOutcome::Committed(_)));
                model.remove(k);
            }
            Op::Checkpoint => {
                db.checkpoint_now().unwrap();
                snapshots.push(model.clone());
            }
        }
    }

    // (a) Live state equals the model.
    for (k, v) in &model {
        assert_eq!(
            db.get(Key(*k)).as_deref(),
            Some(v.as_slice()),
            "live state diverged at key {k}"
        );
    }
    assert_eq!(db.record_count(), model.len());

    // (b+c) Recovery of the newest chain equals the state at the last
    // checkpoint.
    if let Some(expected) = snapshots.last() {
        let fresh = CalcStrategy::full(
            StoreConfig::for_records(4096, 64),
            Arc::new(CommitLog::new(false)),
        );
        let outcome = recovery::recover_checkpoint_only(db.checkpoint_dir(), &fresh).unwrap();
        assert_eq!(
            outcome.loaded_records as usize,
            expected.len(),
            "recovered record count"
        );
        for (k, v) in expected {
            assert_eq!(
                fresh.get(Key(*k)).as_deref(),
                Some(v.as_slice()),
                "recovered state diverged at key {k}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn calc_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        run_scenario(StrategyKind::Calc, &ops, "calc");
    }

    #[test]
    fn pcalc_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        run_scenario(StrategyKind::PCalc, &ops, "pcalc");
    }

    #[test]
    fn zigzag_matches_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_scenario(StrategyKind::Zigzag, &ops, "zigzag");
    }

    #[test]
    fn pipp_matches_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_scenario(StrategyKind::PIpp, &ops, "pipp");
    }

    #[test]
    fn pnaive_matches_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_scenario(StrategyKind::PNaive, &ops, "pnaive");
    }
}
