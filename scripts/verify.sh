#!/usr/bin/env bash
# Full verification gate: tier-1 (build + every workspace test) followed
# by tier-2 (the deterministic crash-simulation suite in calc-sim,
# including the 64-seed smoke sweep). Any sim failure panics with the
# exact replayable spec — seed, strategy, fault kind and operation
# index — reproducible via e.g.:
#
#   SIM_SEED=0xdeadbeef cargo test -p calc-sim
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release --workspace --quiet

echo "== tier-1: workspace tests =="
cargo test --workspace --quiet

echo "== tier-2: crash-simulation sweep (calc-sim) =="
cargo test --package calc-sim --quiet

echo "verify: all gates green"
