#!/usr/bin/env bash
# Full verification gate: tier-0 (clippy, deny warnings), tier-1 (build +
# every workspace test), tier-2 (the deterministic crash-simulation suite
# in calc-sim, including the 64-seed smoke sweep), tier-3 (the concurrency
# conformance suite in calc-conform at three fixed base seeds), tier-4
# (the transient-fault sweep, run serially and again with 4-way parallel
# checkpoint capture). Tiers 2-4 also rerun under the thread-per-core
# shard-owned executor (EXEC_MODE=shard_owned), so both execution paths
# hold the same crash/serializability contracts. Tier-5 (the two-node warm-standby failover
# sweep at three fixed base seeds), tier-6 (the calc-server suite:
# wire-protocol round trips over real TCP, the shutdown-under-load
# durability test, and the kill-9 smoke — the real server binary on an
# ephemeral port, concurrent writers, SIGKILL mid-traffic, restart over
# the same directory, and every acknowledged write must survive), and
# tier-7 (the chaos/overload suite at fixed seeds: wire-protocol fuzzing
# — garbage opcodes, oversized prefixes, truncated frames, slowloris —
# the overload sweep past saturation with a concurrent checkpoint, the
# connection-cap test, the fault-injecting proxy, and the engine-level
# adaptive-pacing regressions; replay a seed with CHAOS_SEED=<n>). Any
# failure panics with the exact replayable spec, reproducible via e.g.:
#
#   SIM_SEED=0xdeadbeef cargo test -p calc-sim
#   CONFORM_SEED=0xc0f020260000 cargo verify-conform
#
# Each conformance test derives its per-run seeds from the base seed, so
# overriding CONFORM_SEED replays the whole suite shifted to that base.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-0: clippy (deny warnings) =="
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== tier-1: release build =="
cargo build --release --workspace --quiet

echo "== tier-1: workspace tests =="
cargo test --workspace --quiet

echo "== tier-2: crash-simulation sweep (calc-sim) =="
cargo test --package calc-sim --quiet

echo "== tier-2: crash-simulation sweep, compressed parts (CKPT_CODEC=rle) =="
CKPT_CODEC=rle cargo test --package calc-sim --quiet

echo "== tier-2: crash-simulation sweep, shard-owned executor (EXEC_MODE=shard_owned) =="
EXEC_MODE=shard_owned cargo test --package calc-sim --quiet

echo "== tier-3: concurrency conformance (calc-conform, 3 base seeds, both executors) =="
for seed in 0xC0F0202600000000 0x5EEDFACE00000001 0xA5A5A5A500000002; do
    for mode in pool shard_owned; do
        echo "  -- CONFORM_SEED=${seed} EXEC_MODE=${mode}"
        CONFORM_SEED="${seed}" EXEC_MODE="${mode}" \
            cargo test --package calc-conform --quiet
    done
done

echo "== tier-4: transient-fault sweep (calc-sim fault_sweep, 3 base seeds) =="
for seed in 0xFA175EED00000000 0xBADD15C000000001 0x0E05BC0000000002; do
    echo "  -- FAULT_SEED=${seed}"
    FAULT_SEED="${seed}" cargo test --package calc-sim --test fault_sweep --quiet
done

echo "== tier-4: transient-fault sweep, 4-way parallel capture =="
CKPT_THREADS=4 SIM_RECOVERY_STATS=1 \
    cargo test --package calc-sim --test fault_sweep --quiet

echo "== tier-4: transient-fault sweep, shard-owned executor =="
EXEC_MODE=shard_owned FAULT_SEED=0xFA175EED00000000 \
    cargo test --package calc-sim --test fault_sweep --quiet

echo "== tier-5: warm-standby failover sweep (calc-sim failover_sweep, 3 base seeds) =="
for seed in 0xCA1C51B700000000 0x57A4DB1700000001 0xFA110E4200000002; do
    echo "  -- SIM_SEED=${seed}"
    SIM_SEED="${seed}" cargo test --package calc-sim --test failover_sweep --quiet
done

echo "== tier-6: server smoke (calc-server: wire verbs, shutdown under load, kill -9) =="
cargo test --package calc-server --quiet

echo "== tier-7: chaos/overload suite (fuzz + overload sweep + pacing, 2 fixed seeds) =="
for seed in 64222 1311768467750121216; do
    echo "  -- CHAOS_SEED=${seed}"
    CHAOS_SEED="${seed}" cargo test --package calc-server --test protocol_fuzz --quiet
    CHAOS_SEED="${seed}" cargo test --package calc-server --test overload_chaos --quiet
done
cargo test --package calc-sim --test overload_pacing --quiet

echo "verify: all gates green"
