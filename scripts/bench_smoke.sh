#!/usr/bin/env bash
# Non-gating benchmark smoke: builds the shard-parallel pipeline bench in
# release mode and emits BENCH_pipeline.json at the repo root (throughput,
# checkpoint cycle duration, recovery time — serial vs. 4-thread capture).
#
# Knobs (forwarded to the bench binary):
#   BENCH_OUT      output path           (default BENCH_pipeline.json)
#   BENCH_RECORDS  section-1 store size  (default 500000)
#   BENCH_SMOKE_MS per-strategy run ms   (default 1200)
#
# Numbers from this script are informational — CI never gates on them.
# On a single-core host the 4-thread capture only overlaps I/O, so the
# speedup column can be flat; read it together with the "cores" field.
set -euo pipefail
cd "$(dirname "$0")/.."

export BENCH_OUT="${BENCH_OUT:-BENCH_pipeline.json}"

echo "== bench smoke: building release pipeline bench =="
cargo build --release --package calc-bench --bin pipeline

echo "== bench smoke: running (out: ${BENCH_OUT}) =="
./target/release/pipeline

echo "== bench smoke: done =="
